"""Session-layer repair: split-part refinement and edge insert/delete.

The two `prepare_incremental` extensions beyond merge-only coarsening:
a split-only refinement projects the standing machinery (cut forest,
relabeled shortcut) and re-verifies it under the PA budget rule, and
`apply_edge_updates` absorbs topology changes by a tree-preserving
rebind whenever no spanning-tree edge was removed.  Repaired setups must
answer queries identically to full prepares, and a budget miss must be
a *counted* fallback whose rebuild ledger equals the full prepare's bit
for bit.
"""

from __future__ import annotations

import pytest

from repro import PASession
from repro.core import MIN, SUM
from repro.graphs import random_connected, random_connected_partition
from repro.graphs.partitions import Partition
from repro.runtime.session import _coarsening_map, _refinement_map


def _net_and_parts(n=44, seed=13):
    net = random_connected(n, 0.09, seed=seed)
    coarse = random_connected_partition(net, 4, seed=5)
    fine = _split_every_part(net, coarse)
    return net, coarse, fine


def _split_every_part(net, partition):
    """Split a BFS-tree leaf off each part: both fragments stay connected."""
    from collections import deque

    part_of = list(partition.part_of)
    next_pid = partition.num_parts
    for pid in range(partition.num_parts):
        members = set(partition.members[pid])
        if len(members) < 2:
            continue
        # BFS inside the part; the last-visited node is a tree leaf, and
        # removing a leaf never disconnects the remainder.
        start = min(members)
        order = [start]
        seen = {start}
        queue = deque([start])
        while queue:
            u = queue.popleft()
            for nb in net.neighbors[u]:
                if nb in members and nb not in seen:
                    seen.add(nb)
                    order.append(nb)
                    queue.append(nb)
        part_of[order[-1]] = next_pid
        next_pid += 1
    labels = {pid: i for i, pid in enumerate(sorted(set(part_of)))}
    fine = Partition([labels[p] for p in part_of])
    assert fine.num_parts > partition.num_parts
    return fine


# -- the refinement map ------------------------------------------------

def test_refinement_map_inverts_coarsening_map():
    net, coarse, fine = _net_and_parts()
    new_to_old = _refinement_map(coarse, fine)
    assert new_to_old is not None
    for node, new_pid in enumerate(fine.part_of):
        assert new_to_old[new_pid] == coarse.part_of[node]
    # And the directions do not cross: fine does not coarsen coarse.
    assert _coarsening_map(coarse, fine) is None


def test_refinement_map_rejects_crossing_partitions():
    net, coarse, _fine = _net_and_parts()
    crossing = random_connected_partition(net, 6, seed=99)
    assert _refinement_map(coarse, crossing) is None


# -- refine vs full prepare --------------------------------------------

def test_refined_setup_answers_like_a_full_prepare():
    net, coarse, fine = _net_and_parts()
    values = [(v * 17) % 101 for v in range(net.n)]

    session = PASession(net, seed=3, reuse=True)
    base = session.prepare(coarse)
    refined = session.prepare_incremental(base, fine)
    assert session.stats.refinements == 1
    twin = PASession(net, seed=3)
    full = twin.prepare(fine)

    for agg in (MIN, SUM):
        got = session.solve(refined, values, agg, charge_setup=False)
        want = twin.solve(full, values, agg, charge_setup=False)
        assert got.aggregates == want.aggregates


def test_refined_division_nests_in_the_fine_partition():
    net, coarse, fine = _net_and_parts()
    session = PASession(net, seed=3, reuse=True)
    base = session.prepare(coarse)
    refined = session.prepare_incremental(base, fine)
    if session.stats.rebuilds:
        pytest.skip("budget rejected the projection on this instance")
    refined.division.validate()
    assert refined.partition is fine


def test_refinement_is_cached_unpinned():
    net, coarse, fine = _net_and_parts()
    session = PASession(net, seed=3, reuse=True)
    base = session.prepare(coarse)
    refined = session.prepare_incremental(base, fine)
    hits_before = session.stats.cache_hits
    again = session.prepare_incremental(base, fine)
    assert session.stats.cache_hits == hits_before + 1
    assert again.partition is refined.partition
    # The parent (coarse) entry is NOT superseded: splits can re-merge.
    assert session.prepare(coarse).partition is base.partition
    assert session.stats.cache_hits == hits_before + 2


# -- the budget rule ----------------------------------------------------

class _ZeroBudget(PASession):
    """Force every projection out of budget (deterministic fallback)."""

    def block_budget(self) -> int:
        return 0


def test_budget_miss_is_a_counted_fallback_with_full_prepare_ledger():
    net, coarse, fine = _net_and_parts()
    session = _ZeroBudget(net, seed=3, reuse=True)
    base = session.prepare(coarse)
    refined = session.prepare_incremental(base, fine)
    assert session.stats.refinements == 1
    assert session.stats.rebuilds == 1

    # The rebuild sub-ledger (the ``rebuild:``-prefixed phases) must be
    # the full prepare's ledger bit for bit — same phases, same rounds,
    # same messages, in the same order.
    twin = PASession(net, seed=3)
    full = twin.prepare(fine)
    rebuilt_phases = [
        (p.name[len("rebuild:"):], p.rounds, p.messages)
        for p in refined.setup_ledger.phases()
        if p.name.startswith("rebuild:")
    ]
    full_phases = [
        (p.name, p.rounds, p.messages)
        for p in full.setup_ledger.phases()
    ]
    assert rebuilt_phases == full_phases

    values = list(range(net.n))
    got = session.solve(refined, values, MIN, charge_setup=False)
    want = twin.solve(full, values, MIN, charge_setup=False)
    assert got.aggregates == want.aggregates


# -- edge updates: repair path ------------------------------------------

def _non_tree_edge(session):
    tree_edges = {
        (min(v, p), max(v, p))
        for v, p in enumerate(session.tree.parent)
        if p >= 0
    }
    return next(e for e in session.net.edges if e not in tree_edges)


def _missing_edge(net):
    for u in range(net.n):
        for v in range(u + 2, net.n):
            if not net.has_edge(u, v):
                return (u, v)
    raise AssertionError("network is complete")


def test_edge_insert_and_delete_repair_preserves_answers():
    net, coarse, _fine = _net_and_parts()
    values = [(v * 29) % 97 for v in range(net.n)]

    session = PASession(net, seed=3, reuse=True)
    setup = session.prepare(coarse)
    removed = _non_tree_edge(session)
    added = _missing_edge(net)
    report = session.apply_edge_updates(add=[added], remove=[removed])
    assert report.repaired
    assert report.added == 1 and report.removed == 1
    assert session.stats.repairs == 1
    assert session.stats.graph_rebuilds == 0
    assert session.net.has_edge(*added)
    assert not session.net.has_edge(*removed)

    # The cached setup was rebound, not evicted: a re-prepare is a hit...
    hits_before = session.stats.cache_hits
    rebound = session.prepare(coarse)
    assert session.stats.cache_hits == hits_before + 1
    # ...and it solves on the *new* topology with correct answers.
    got = session.solve(rebound, values, SUM, charge_setup=False)
    expect = {
        pid: sum(values[v] for v in coarse.members[pid])
        for pid in range(coarse.num_parts)
    }
    assert got.aggregates == expect


def test_edge_repair_parity_with_a_fresh_session():
    """A repaired session answers exactly like one built on the new graph."""
    net, coarse, _fine = _net_and_parts()
    values = [(v * 31) % 89 for v in range(net.n)]

    session = PASession(net, seed=3, reuse=True)
    session.prepare(coarse)
    added = _missing_edge(net)
    session.apply_edge_updates(add=[added])
    got = session.solve(
        session.prepare(coarse), values, MIN, charge_setup=False
    )

    fresh = PASession(session.net, seed=3, reuse=True)
    want = fresh.solve(fresh.prepare(coarse), values, MIN, charge_setup=False)
    assert got.aggregates == want.aggregates


def test_tree_edge_removal_forces_counted_rebuild():
    net, coarse, _fine = _net_and_parts()
    session = PASession(net, seed=3, reuse=True)
    session.prepare(coarse)
    tree_edge = next(
        (min(v, p), max(v, p))
        for v, p in enumerate(session.tree.parent)
        if p >= 0
    )
    # Keep the graph connected: add a replacement edge in the same batch.
    replacement = _missing_edge(net)
    report = session.apply_edge_updates(add=[replacement], remove=[tree_edge])
    assert not report.repaired
    assert session.stats.graph_rebuilds == 1
    # Everything cached belonged to the old machinery.
    assert report.evicted_setups == 1
    assert len(session._cache) == 0
    # The rebuild charged a fresh tree election to the report's ledger.
    assert any(
        p.name.startswith("rebuild:") for p in report.ledger.phases()
    )
    # And the session still serves.
    values = list(range(net.n))
    result = session.solve(
        session.prepare(coarse), values, SUM, charge_setup=False
    )
    assert set(result.aggregates) == set(range(coarse.num_parts))


def test_deletion_that_disconnects_a_part_evicts_its_setup():
    # A path: every internal edge is a tree edge of the BFS tree rooted
    # anywhere, so use a path plus one chord and delete the chord's
    # bypassed path edge... simpler: build a net where some part relies
    # on a specific non-tree edge for connectivity.
    net = random_connected(30, 0.12, seed=21)
    session = PASession(net, seed=7, reuse=True)
    # Find a non-tree edge whose removal disconnects some cached part:
    # take a 2-node part {u, v} connected only through edge (u, v).
    target = _non_tree_edge(session)
    u, v = target
    rest = [w for w in range(net.n) if w not in (u, v)]
    # Partition: {u, v} as one part iff the rest stays connected under
    # the part structure; fall back to skipping if not expressible.
    part_of = [0] * net.n
    for w in (u, v):
        part_of[w] = 1
    try:
        two_part = Partition(part_of)
        from repro.graphs.partitions import validate_partition

        validate_partition(net, two_part)
    except Exception:
        pytest.skip("instance cannot express the two-node part")
    session.prepare(two_part)
    report = session.apply_edge_updates(remove=[target])
    if not report.repaired:
        pytest.skip("chord was needed by the spanning tree on this seed")
    # Part {u, v} lost its only internal edge: the setup must be evicted.
    assert report.evicted_setups == 1
    assert session.stats.repair_evictions == 1


def test_edge_update_validation():
    net, coarse, _fine = _net_and_parts()
    session = PASession(net, seed=3, reuse=True)
    with pytest.raises(ValueError):
        session.apply_edge_updates(remove=[_missing_edge(net)])
    with pytest.raises(ValueError):
        session.apply_edge_updates(add=[net.edges[0]])
    e = _missing_edge(net)
    with pytest.raises(ValueError):
        session.apply_edge_updates(add=[e], remove=[e])
    with pytest.raises(ValueError):
        session.apply_edge_updates(add=[e], weights={e: 3})  # unweighted
