"""Approximate SSSP (Cor 1.5) and approximate min-cut (Cor 1.4)."""

import pytest

from repro.algorithms import approx_min_cut, approx_sssp
from repro.analysis import dijkstra, stoer_wagner_min_cut
from repro.graphs import (
    cut_weight,
    grid_2d,
    path_graph,
    random_connected,
    with_distinct_weights,
    with_planted_cut,
    with_random_weights,
)


def test_sssp_never_underestimates(weighted_random):
    run = approx_sssp(weighted_random, source=0, beta=0.25, seed=1)
    exact = dijkstra(weighted_random, 0)
    for v in range(weighted_random.n):
        assert run.output[v] >= exact[v]
    assert run.output[0] == 0


def test_sssp_exact_within_hop_horizon():
    net = with_random_weights(path_graph(20), max_weight=9, seed=2)
    run = approx_sssp(net, source=0, beta=0.2, seed=2)  # horizon 5 hops
    exact = dijkstra(net, 0)
    for v in range(6):  # nodes within 5 hops of the source
        assert run.output[v] == exact[v]


def test_sssp_beta_tradeoff_monotone(weighted_random):
    """Smaller beta -> more rounds/messages and no worse stretch."""
    exact = dijkstra(weighted_random, 0)

    def total_stretch(run):
        return sum(
            run.output[v] / exact[v]
            for v in range(1, weighted_random.n)
            if exact[v]
        )

    coarse = approx_sssp(weighted_random, 0, beta=0.5, seed=3)
    fine = approx_sssp(weighted_random, 0, beta=0.05, seed=3)
    assert total_stretch(fine) <= total_stretch(coarse) + 1e-9
    bf_coarse = [p for p in coarse.ledger.phases() if p.name == "sssp_bellman_ford"]
    bf_fine = [p for p in fine.ledger.phases() if p.name == "sssp_bellman_ford"]
    assert bf_fine[0].rounds > bf_coarse[0].rounds


def test_sssp_validates_input(weighted_random):
    with pytest.raises(ValueError):
        approx_sssp(path_graph(5), 0)
    with pytest.raises(ValueError):
        approx_sssp(weighted_random, 0, beta=0.0)


def test_sssp_amortized_tree(weighted_random):
    from repro.analysis import kruskal_mst

    tree = kruskal_mst(weighted_random)
    run = approx_sssp(weighted_random, 0, beta=0.2, seed=4, tree_edges=tree)
    assert all(isinstance(d, int) for d in run.output)


def test_mincut_finds_planted_cut():
    base = grid_2d(3, 8)
    side = {r * 8 + c for r in range(3) for c in range(4)}
    net = with_planted_cut(base, side, cut_weight_each=1, bulk_weight=300)
    run = approx_min_cut(net, epsilon=0.7, seed=5, max_trees=4)
    value, got_side = run.output
    exact = stoer_wagner_min_cut(net)
    assert value == exact == 3
    # The reported side realizes the reported value.
    realized = cut_weight(net, {v for v in range(net.n) if got_side[v] == 1})
    assert realized == value


def test_mincut_close_to_exact_on_random(weighted_random):
    run = approx_min_cut(weighted_random, epsilon=0.9, seed=6, max_trees=4)
    exact = stoer_wagner_min_cut(weighted_random)
    assert run.output[0] >= exact  # 1-respecting cuts are real cuts
    assert run.output[0] <= 3 * exact  # empirically tight; shape guard


def test_mincut_epsilon_scales_tree_count():
    net = with_random_weights(grid_2d(3, 5), max_weight=20, seed=7)
    loose = approx_min_cut(net, epsilon=1.0, seed=8)
    tight = approx_min_cut(net, epsilon=0.4, seed=8)
    assert tight.meta["trees_packed"] > loose.meta["trees_packed"]


def test_mincut_validates_input(path10):
    with pytest.raises(ValueError):
        approx_min_cut(path10, epsilon=0.5)
    net = with_random_weights(path10, seed=9)
    with pytest.raises(ValueError):
        approx_min_cut(net, epsilon=0)
