"""CC labeling and the verification suite vs. sequential oracles."""

import pytest

from repro.algorithms import (
    cc_labeling,
    verify_bipartiteness,
    verify_connectivity,
    verify_cut,
    verify_cycle_containment,
    verify_spanning_tree,
    verify_st_connectivity,
    verify_st_cut,
)
from repro.analysis import kruskal_mst
from repro.graphs import (
    connected_components,
    cycle_graph,
    grid_2d,
    path_graph,
    random_connected,
    with_distinct_weights,
)


def test_cc_labels_match_oracle(small_random):
    edges = [e for i, e in enumerate(small_random.edges) if i % 3 != 0]
    run = cc_labeling(small_random, edges, seed=1)
    oracle = connected_components(small_random, edges)
    # Same label iff same oracle component.
    for u in range(small_random.n):
        for v in range(u + 1, small_random.n):
            assert (run.output[u] == run.output[v]) == (oracle[u] == oracle[v])


def test_cc_label_is_min_member_uid(small_random):
    edges = list(small_random.edges)[::2]
    run = cc_labeling(small_random, edges, seed=2)
    oracle = connected_components(small_random, edges)
    groups = {}
    for v in range(small_random.n):
        groups.setdefault(oracle[v], []).append(v)
    for members in groups.values():
        expect = min(small_random.uid[v] for v in members)
        for v in members:
            assert run.output[v] == expect


def test_verify_connectivity_positive_and_negative(small_random):
    full = verify_connectivity(small_random, list(small_random.edges), seed=3)
    assert full.output is True
    partial = verify_connectivity(small_random, list(small_random.edges)[:3], seed=4)
    assert partial.output is False


def test_verify_st_connectivity(path10):
    edges = [(0, 1), (1, 2), (5, 6)]
    yes = verify_st_connectivity(path10, edges, 0, 2, seed=5)
    assert yes.output is True
    no = verify_st_connectivity(path10, edges, 0, 6, seed=6)
    assert no.output is False
    same = verify_st_connectivity(path10, edges, 4, 4, seed=7)
    assert same.output is True


def test_verify_cut(grid4x6):
    # Removing all edges between columns 2 and 3 disconnects the grid.
    cut = [
        (r * 6 + 2, r * 6 + 3) for r in range(4)
    ]
    yes = verify_cut(grid4x6, cut, seed=8)
    assert yes.output is True
    no = verify_cut(grid4x6, cut[:2], seed=9)
    assert no.output is False


def test_verify_st_cut(path10):
    result = verify_st_cut(path10, [(4, 5)], 0, 9, seed=10)
    assert result.output is True
    result = verify_st_cut(path10, [(4, 5)], 0, 3, seed=11)
    assert result.output is False


def test_verify_spanning_tree(weighted_random):
    tree = kruskal_mst(weighted_random)
    yes = verify_spanning_tree(weighted_random, list(tree), seed=12)
    assert yes.output is True
    missing = list(tree)[:-1]
    assert verify_spanning_tree(weighted_random, missing, seed=13).output is False
    extra = list(weighted_random.edges)
    assert verify_spanning_tree(weighted_random, extra, seed=14).output is False


def test_verify_cycle_containment(grid4x6):
    face = [(0, 1), (1, 7), (7, 6), (6, 0)]
    assert verify_cycle_containment(grid4x6, face, seed=15).output is True
    tree_like = [(0, 1), (1, 2), (2, 3)]
    assert verify_cycle_containment(grid4x6, tree_like, seed=16).output is False


def test_verify_bipartiteness():
    even = cycle_graph(8)
    assert verify_bipartiteness(even, list(even.edges), seed=17).output is True
    odd = cycle_graph(9)
    assert verify_bipartiteness(odd, list(odd.edges), seed=18).output is False


def test_verification_costs_are_pa_dominated(small_random):
    run = verify_connectivity(small_random, list(small_random.edges), seed=19)
    by_name = run.ledger.by_name()
    pa_msgs = sum(
        s.messages for name, s in by_name.items() if "cc_label" in name
    )
    extra_msgs = sum(
        s.messages for name, s in by_name.items() if "connectivity" in name
    )
    assert extra_msgs <= pa_msgs + 4 * small_random.n
