"""MST via PA (Corollary 1.3) against the Kruskal oracle."""

import pytest

from repro.algorithms import COIN, STAR, minimum_spanning_tree
from repro.analysis import kruskal_mst, mst_weight
from repro.core import DETERMINISTIC, RANDOMIZED
from repro.graphs import (
    grid_2d,
    grid_with_apex,
    path_graph,
    random_connected,
    with_distinct_weights,
    with_random_weights,
)


def test_mst_matches_kruskal_on_random_graph(weighted_random):
    result = minimum_spanning_tree(weighted_random, seed=1)
    assert set(result.output) == kruskal_mst(weighted_random)


def test_mst_matches_kruskal_on_grid():
    net = with_distinct_weights(grid_2d(4, 7), seed=3)
    result = minimum_spanning_tree(net, seed=2)
    assert set(result.output) == kruskal_mst(net)


def test_mst_with_duplicate_weights_has_optimal_weight():
    net = with_random_weights(random_connected(30, 0.1, seed=4), max_weight=5, seed=5)
    result = minimum_spanning_tree(net, seed=3)
    assert len(result.output) == net.n - 1
    # With ties the edge set may differ, but the weight cannot.
    assert mst_weight(net, set(result.output)) == mst_weight(net, kruskal_mst(net))


def test_mst_star_merging_deterministic_mode():
    net = with_distinct_weights(random_connected(24, 0.12, seed=6), seed=7)
    result = minimum_spanning_tree(net, mode=DETERMINISTIC, merging=STAR, seed=4)
    assert set(result.output) == kruskal_mst(net)


def test_mst_coin_vs_star_same_tree(weighted_random):
    coin = minimum_spanning_tree(weighted_random, merging=COIN, seed=5)
    star = minimum_spanning_tree(weighted_random, merging=STAR, seed=5)
    assert set(coin.output) == set(star.output)


def test_mst_on_path_is_all_edges():
    net = with_distinct_weights(path_graph(15), seed=8)
    result = minimum_spanning_tree(net, seed=6)
    assert set(result.output) == set(net.edges)


def test_mst_requires_weights():
    with pytest.raises(ValueError):
        minimum_spanning_tree(path_graph(5))


def test_mst_phase_count_logarithmic(weighted_random):
    result = minimum_spanning_tree(weighted_random, seed=7)
    import math

    assert result.meta["phases"] <= 4 * math.ceil(math.log2(weighted_random.n)) + 8


def test_mst_ledger_phases_include_pa_waves(weighted_random):
    result = minimum_spanning_tree(weighted_random, seed=8)
    names = {p.name for p in result.ledger.phases()}
    assert any("moe_wave" in name for name in names)
    assert any("setup" in name for name in names)
