"""k-dominating sets (Cor A.3) and connected dominating sets (Cor A.2)."""

import pytest

from repro.algorithms import connected_dominating_set, k_dominating_set
from repro.analysis import greedy_dominating_set_size
from repro.graphs import (
    grid_2d,
    induces_connected_subgraph,
    is_dominating_set,
    is_k_dominating_set,
    path_graph,
    random_connected,
)


@pytest.mark.parametrize("k", [4, 8, 16])
def test_kdom_radius_and_size(k):
    net = grid_2d(5, 12)
    result = k_dominating_set(net, k, seed=1)
    centers = set(result.output)
    assert is_k_dominating_set(net, centers, k)
    assert len(centers) <= max(1, 6 * net.n // k) + 1


def test_kdom_on_path():
    net = path_graph(40)
    result = k_dominating_set(net, 10, seed=2)
    centers = set(result.output)
    assert is_k_dominating_set(net, centers, 10)
    assert len(centers) <= 24  # 6n/k


def test_kdom_k_exceeding_diameter():
    net = grid_2d(4, 4)
    result = k_dominating_set(net, 100, seed=3)
    assert len(result.output) <= 2


def test_kdom_rejects_bad_k(path10):
    with pytest.raises(ValueError):
        k_dominating_set(path10, 0)


def test_kdom_clusters_cover_all_nodes():
    net = random_connected(40, 0.07, seed=4)
    result = k_dominating_set(net, 8, seed=5)
    cluster_of = result.meta["cluster_of"]
    center_of = result.meta["center_of"]
    assert len(set(cluster_of)) == len(result.output)
    for v in range(net.n):
        assert center_of[v] in result.output


def test_cds_is_connected_dominating(small_random):
    result = connected_dominating_set(small_random, seed=6)
    cds = set(result.output)
    assert is_dominating_set(small_random, cds)
    assert induces_connected_subgraph(small_random, cds)


def test_cds_on_grid():
    net = grid_2d(4, 8)
    result = connected_dominating_set(net, seed=7)
    cds = set(result.output)
    assert is_dominating_set(net, cds)
    assert induces_connected_subgraph(net, cds)


def test_cds_size_within_log_factor(small_random):
    """CDS <= 3 * (greedy DS), and greedy DS is O(log n)-approximate."""
    result = connected_dominating_set(small_random, seed=8)
    greedy = greedy_dominating_set_size(small_random)
    assert len(result.output) <= 3 * greedy + 2


def test_cds_single_node():
    from repro.congest import Network

    net = Network([(0, 1)])
    result = connected_dominating_set(net, seed=9)
    assert len(result.output) >= 1
