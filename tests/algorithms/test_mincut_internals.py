"""Min-cut building blocks: intervals, LCA routing, cut convergecast."""

from repro.congest import CostLedger, Engine
from repro.core import ABSENT, ROOT, RootedForest
from repro.algorithms.mincut import (
    _CutConvergecast,
    _IntervalProgram,
    _LcaRouteProgram,
    _one_respecting_min_cut,
)
from repro.analysis import stoer_wagner_min_cut, kruskal_mst
from repro.graphs import (
    cut_weight,
    grid_2d,
    path_graph,
    with_distinct_weights,
    with_planted_cut,
)


def test_interval_labels_are_preorder(grid4x6):
    from repro.core import bfs_tree

    engine = Engine(grid4x6)
    tree = bfs_tree(engine, grid4x6, 0, CostLedger()).tree
    program = _IntervalProgram(tree)
    engine.run(program, max_ticks=4 * tree.height() + 8)
    # Root spans everything; children partition the parent interval.
    assert program.interval[0] == (0, grid4x6.n - 1)
    for v in range(grid4x6.n):
        lo, hi = program.interval[v]
        assert hi - lo + 1 == program.size[v]
        for c in tree.children[v]:
            clo, chi = program.interval[c]
            assert lo < clo and chi <= hi


def test_lca_routing_accumulates_at_ancestor():
    net = grid_2d(2, 4)  # nodes 0..3 top row, 4..7 bottom
    from repro.core import bfs_tree

    engine = Engine(net)
    tree = bfs_tree(engine, net, 0, CostLedger()).tree
    intervals = _IntervalProgram(tree)
    engine.run(intervals, max_ticks=30)
    # Route a single non-tree edge and check its weight lands on a common
    # ancestor of both endpoints.
    non_tree = None
    tree_edges = {(v, tree.parent[v]) for v in range(net.n) if tree.parent[v] >= 0}
    canon = {tuple(sorted(e)) for e in tree_edges}
    for e in net.edges:
        if e not in canon:
            non_tree = e
            break
    x, y = non_tree
    router = _LcaRouteProgram(
        tree, intervals.interval, [(x, intervals.interval[y][0], 7)]
    )
    engine.run(router, max_ticks=40)
    holders = [v for v in range(net.n) if router.lca_weight[v] == 7]
    assert len(holders) == 1
    lca = holders[0]
    lo, hi = intervals.interval[lca]
    assert lo <= intervals.interval[x][0] <= hi
    assert lo <= intervals.interval[y][0] <= hi


def test_one_respecting_cut_matches_bruteforce_on_path():
    net = with_distinct_weights(path_graph(12), seed=31)
    tree_edges = set(net.edges)  # a path IS its own spanning tree
    engine = Engine(net)
    value, node = _one_respecting_min_cut(net, tree_edges, engine, CostLedger())
    # On a tree, the min cut is simply the lightest edge.
    assert value == min(net.weights.values())


def test_one_respecting_cut_value_is_real_cut(weighted_random):
    tree_edges = kruskal_mst(weighted_random)
    engine = Engine(weighted_random)
    value, node = _one_respecting_min_cut(
        weighted_random, tree_edges, engine, CostLedger()
    )
    from repro.algorithms.sssp import _root_tree_at

    tree = _root_tree_at(weighted_random, tree_edges, 0)
    side = set(tree.subtree_nodes(node))
    assert cut_weight(weighted_random, side) == value
    assert value >= stoer_wagner_min_cut(weighted_random)
