"""When the sharded backend must decline: fallbacks and merge mechanics."""

from __future__ import annotations

import pytest

from repro import PASession
from repro.congest.ledger import EngineProfile, PhaseStats
from repro.core import SUM
from repro.core.aggregation import Aggregation
from repro.graphs import random_connected, random_connected_partition
from repro.shard import encode_aggregation, encode_batch, merge_shard_phases
from repro.shard.ledger_merge import phases_to_wire
from repro.core.aggregation import MAX, MIN


def _session(**kw):
    net = random_connected(48, 0.08, seed=11)
    partition = random_connected_partition(net, 8, seed=5)
    session = PASession(net, seed=3, **kw)
    return session, partition


def test_unknown_backend_rejected():
    with pytest.raises(ValueError):
        _session(backend="distributed")


def test_custom_aggregation_falls_back():
    custom = Aggregation("custom", lambda a, b: a + b)
    session, partition = _session(
        backend="sharded", workers=2, shard_min_n=0
    )
    try:
        setup = session.prepare(partition)
        values = list(range(session.net.n))
        result = session.solve(setup, values, custom)
        assert session.stats.sharded_fallbacks == 1
        assert session.stats.sharded_solves == 0
        assert session.stats.solves == 1
        # The fallback still answers correctly.
        expected = PASession(session.net, seed=3).solve(
            PASession(session.net, seed=3).prepare(partition), values, custom
        )
        assert result.aggregates == expected.aggregates
    finally:
        session.close()


def test_small_network_falls_back():
    session, partition = _session(backend="sharded", workers=2)
    try:
        setup = session.prepare(partition)
        session.solve(setup, list(range(session.net.n)), SUM)
        assert session.stats.sharded_fallbacks == 1
        assert session.stats.sharded_solves == 0
    finally:
        session.close()


def test_async_session_falls_back():
    session, partition = _session(
        backend="sharded", workers=2, shard_min_n=0, async_mode=True
    )
    try:
        setup = session.prepare(partition)
        session.solve(setup, list(range(session.net.n)), SUM)
        assert session.stats.sharded_fallbacks == 1
        assert session.stats.sharded_solves == 0
    finally:
        session.close()


def test_encode_aggregation_registry():
    assert encode_aggregation(SUM) == ("stock", "SUM")
    assert encode_aggregation(MIN) == ("stock", "MIN")
    assert encode_aggregation(Aggregation("custom", min)) is None
    assert encode_batch([MIN, MAX]) == ("product", ["MIN", "MAX"])
    assert encode_batch([MIN, Aggregation("custom", min)]) is None


def test_merge_shard_phases_rule():
    a = phases_to_wire([
        PhaseStats(name="pa_wave", rounds=5, messages=10, ticks=5, bits=100),
        PhaseStats(name="pa_reverse", rounds=3, messages=4, ticks=3, bits=40),
    ])
    b = phases_to_wire([
        PhaseStats(name="pa_wave", rounds=7, messages=20, ticks=7, bits=150),
        PhaseStats(name="pa_reverse", rounds=2, messages=6, ticks=2, bits=60),
    ])
    merged = merge_shard_phases([a, b])
    assert [(p.name, p.rounds, p.messages, p.ticks, p.bits) for p in merged] == [
        ("pa_wave", 7, 30, 7, 250),
        ("pa_reverse", 3, 10, 3, 100),
    ]


def test_merge_profiles_only_when_all_present():
    profiled = PhaseStats(
        name="pa_wave", rounds=5, messages=10, ticks=5, bits=0,
        profile=EngineProfile(
            ticks=5, peak_in_flight=3, activations=9, idle_ticks=1
        ),
    )
    bare = PhaseStats(name="pa_wave", rounds=4, messages=8, ticks=4, bits=0)
    both = merge_shard_phases(
        [phases_to_wire([profiled]), phases_to_wire([profiled])]
    )
    assert both[0].profile == EngineProfile(
        ticks=5, peak_in_flight=6, activations=18, idle_ticks=1
    )
    mixed = merge_shard_phases(
        [phases_to_wire([profiled]), phases_to_wire([bare])]
    )
    assert mixed[0].profile is None


def test_merge_rejects_divergent_logs():
    a = phases_to_wire([PhaseStats(name="pa_wave", rounds=1, messages=1)])
    b = phases_to_wire([PhaseStats(name="pa_replay", rounds=1, messages=1)])
    with pytest.raises(RuntimeError, match="diverge"):
        merge_shard_phases([a, b])


def test_merge_empty_is_empty():
    assert merge_shard_phases([]) == []
