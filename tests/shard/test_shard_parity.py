"""The sharded backend's contract: bit-for-bit parity with the serial engine.

Every test compares a ``backend="sharded"`` session against a plain
in-process session on the same network/partition/seed and asserts the
*full phase log* — ``(name, rounds, messages)`` entry for entry — plus
aggregates and per-node values are identical.  ``bits`` are deliberately
excluded: part-id relabeling shrinks per-message pid widths on a shard
(documented in docs/architecture.md, "Sharded backend").
"""

from __future__ import annotations

import random

import pytest

from repro import PASession
from repro.core import MIN, MIN_TUPLE, SUM
from repro.graphs import (
    grid_2d,
    random_connected,
    random_connected_partition,
    with_distinct_weights,
)
from repro.algorithms import minimum_spanning_tree

MODES = ["randomized", "deterministic"]
WORKER_COUNTS = [1, 2, 4]


def _phase_sig(ledger):
    return [(p.name, p.rounds, p.messages) for p in ledger.phases()]


def _net_and_partition():
    net = random_connected(48, 0.08, seed=11)
    partition = random_connected_partition(net, 8, seed=5)
    return net, partition


def _values(n, seed=7):
    rng = random.Random(seed)
    return [rng.randrange(1000) for _ in range(n)]


@pytest.mark.parametrize("mode", MODES)
@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_solve_parity(mode, workers):
    net, partition = _net_and_partition()
    values = _values(net.n)

    serial = PASession(net, mode=mode, seed=3)
    expected = serial.solve(serial.prepare(partition), values, SUM)

    session = PASession(
        net, mode=mode, seed=3,
        backend="sharded", workers=workers, shard_min_n=0,
    )
    try:
        result = session.solve(session.prepare(partition), values, SUM)
        assert session.stats.sharded_solves == 1
        assert session.stats.sharded_fallbacks == 0
        assert result.aggregates == expected.aggregates
        assert result.value_at_node == expected.value_at_node
        assert _phase_sig(result.ledger) == _phase_sig(expected.ledger)
    finally:
        session.close()


@pytest.mark.parametrize("workers", [1, 2])
def test_scalar_path_parity(workers):
    """Tuple values force the scalar wave programs inside the workers."""
    net, partition = _net_and_partition()
    values = [(v, i) for i, v in enumerate(_values(net.n, seed=9))]

    serial = PASession(net, seed=3)
    expected = serial.solve(serial.prepare(partition), values, MIN_TUPLE)

    session = PASession(
        net, seed=3, backend="sharded", workers=workers, shard_min_n=0,
    )
    try:
        result = session.solve(session.prepare(partition), values, MIN_TUPLE)
        assert session.stats.sharded_solves == 1
        assert result.aggregates == expected.aggregates
        assert result.value_at_node == expected.value_at_node
        assert _phase_sig(result.ledger) == _phase_sig(expected.ledger)
    finally:
        session.close()


def test_batched_solve_many_parity():
    net, partition = _net_and_partition()
    values = _values(net.n)
    items = [(values, SUM), (values, MIN)]

    serial = PASession(net, seed=3, batch=True)
    expected = serial.solve_many(serial.prepare(partition), items)

    session = PASession(
        net, seed=3, batch=True,
        backend="sharded", workers=2, shard_min_n=0,
    )
    try:
        result = session.solve_many(session.prepare(partition), items)
        assert session.stats.sharded_solves == 1
        assert session.stats.batched_solves == len(items)
        for got, want in zip(result.per_agg, expected.per_agg):
            assert got.aggregates == want.aggregates
            assert got.value_at_node == want.value_at_node
        assert _phase_sig(result.ledger) == _phase_sig(expected.ledger)
    finally:
        session.close()


def test_unbatched_solve_many_routes_each_item_sharded():
    net, partition = _net_and_partition()
    values = _values(net.n)
    items = [(values, SUM), (values, MIN)]

    serial = PASession(net, seed=3)
    expected = serial.solve_many(serial.prepare(partition), items)

    session = PASession(
        net, seed=3, backend="sharded", workers=2, shard_min_n=0,
    )
    try:
        result = session.solve_many(session.prepare(partition), items)
        assert session.stats.sharded_solves == 2
        for got, want in zip(result.per_agg, expected.per_agg):
            assert got.aggregates == want.aggregates
        assert _phase_sig(result.ledger) == _phase_sig(expected.ledger)
    finally:
        session.close()


@pytest.mark.parametrize("mode", MODES)
@pytest.mark.parametrize("workers", [1, 2, 4])
def test_mst_end_to_end_parity(mode, workers):
    net = with_distinct_weights(random_connected(40, 0.08, seed=11), seed=3)
    expected = minimum_spanning_tree(net, mode=mode, seed=5)

    session = PASession(
        net, mode=mode, seed=5,
        backend="sharded", workers=workers, shard_min_n=0,
    )
    try:
        result = minimum_spanning_tree(
            net, mode=mode, seed=5, session=session
        )
        assert session.stats.sharded_solves > 0
        assert sorted(result.output) == sorted(expected.output)
        assert _phase_sig(result.ledger) == _phase_sig(expected.ledger)
    finally:
        session.close()


def test_grid_parity():
    net = grid_2d(8, 8)
    partition = random_connected_partition(net, 10, seed=9)
    values = _values(net.n)

    serial = PASession(net, seed=1)
    expected = serial.solve(serial.prepare(partition), values, MIN)

    session = PASession(
        net, seed=1, backend="sharded", workers=3, shard_min_n=0,
    )
    try:
        result = session.solve(session.prepare(partition), values, MIN)
        assert result.aggregates == expected.aggregates
        assert _phase_sig(result.ledger) == _phase_sig(expected.ledger)
    finally:
        session.close()


def test_shard_report_populated():
    net, partition = _net_and_partition()
    session = PASession(
        net, seed=3, backend="sharded", workers=2, shard_min_n=0,
    )
    try:
        assert session.shard_report is None
        session.solve(session.prepare(partition), _values(net.n), SUM)
        report = session.shard_report
        assert report is not None
        assert report["workers"] == 2
        assert len(report["shard_wall_seconds"]) == report["shards"]
        assert report["merge_seconds"] >= 0.0
        assert report["ship_seconds"] >= 0.0
    finally:
        session.close()


def test_close_is_idempotent():
    net, partition = _net_and_partition()
    session = PASession(
        net, seed=3, backend="sharded", workers=2, shard_min_n=0,
    )
    session.solve(session.prepare(partition), _values(net.n), SUM)
    session.close()
    session.close()
