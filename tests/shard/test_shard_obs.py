"""Shard lifecycle observability: ship/solve/barrier/merge spans."""

from __future__ import annotations

import random

from repro import PASession
from repro.core import SUM
from repro.graphs import random_connected, random_connected_partition
from repro.obs import Tracer, use_tracer


def test_sharded_solve_emits_lifecycle_spans():
    net = random_connected(48, 0.08, seed=11)
    partition = random_connected_partition(net, 8, seed=5)
    values = [random.Random(7).randrange(1000) for _ in range(net.n)]

    tracer = Tracer()
    session = PASession(
        net, seed=3, backend="sharded", workers=2, shard_min_n=0
    )
    try:
        setup = session.prepare(partition)
        with use_tracer(tracer):
            session.solve(setup, values, SUM)
    finally:
        session.close()

    names = [e["name"] for e in tracer.events]
    shards = session.stats.sharded_solves
    assert shards == 1
    assert names.count("shard.ship") >= 1
    assert names.count("shard.solve") >= 1
    assert names.count("shard.barrier") == 1
    assert names.count("shard.merge") == 1
    ship = next(e for e in tracer.events if e["name"] == "shard.ship")
    assert ship["args"]["parts"] >= 1
    assert ship["args"]["nodes"] >= 1
