"""Shard plans: conflict-component closure and deterministic binning."""

from __future__ import annotations

import pytest

from repro import PASession
from repro.graphs import grid_2d, random_connected, random_connected_partition
from repro.shard import ShardPlan, build_shard_plan
from repro.shard.plan import conflict_components


def _setup(mode="randomized", n_parts=8, seed=3):
    net = random_connected(48, 0.08, seed=11)
    partition = random_connected_partition(net, n_parts, seed=5)
    session = PASession(net, mode=mode, seed=seed)
    return session.prepare(partition), partition


def test_components_partition_the_parts():
    setup, partition = _setup()
    components = conflict_components(setup)
    seen = sorted(pid for comp in components for pid in comp)
    assert seen == list(range(partition.num_parts))
    for comp in components:
        assert comp == sorted(comp)


def test_components_are_conflict_closed():
    """No used tree edge may have users in two different components."""
    setup, _partition = _setup()
    components = conflict_components(setup)
    comp_of = {}
    for k, comp in enumerate(components):
        for pid in comp:
            comp_of[pid] = k
    part_of = setup.partition.part_of
    tparent = setup.shortcut.tree.parent
    for c, parts in enumerate(setup.shortcut.up_parts):
        if not parts:
            continue
        users = set(parts)
        p = tparent[c]
        if p >= 0 and part_of[c] == part_of[p]:
            users.add(part_of[c])
        assert len({comp_of[pid] for pid in users}) == 1


@pytest.mark.parametrize("workers", [1, 2, 3, 8])
def test_plan_covers_every_part_once(workers):
    setup, partition = _setup()
    plan = build_shard_plan(setup, workers)
    assert isinstance(plan, ShardPlan)
    assert plan.num_shards <= workers
    assert plan.num_shards <= plan.num_components
    seen = sorted(pid for shard in plan.shard_parts for pid in shard)
    assert seen == list(range(partition.num_parts))
    for shard in plan.shard_parts:
        assert shard == tuple(sorted(shard))


def test_plan_is_deterministic():
    setup, _partition = _setup()
    a = build_shard_plan(setup, 4)
    b = build_shard_plan(setup, 4)
    assert a == b


def test_plan_rejects_bad_workers():
    setup, _partition = _setup()
    with pytest.raises(ValueError):
        build_shard_plan(setup, 0)


def test_workers_one_is_a_single_shard():
    setup, partition = _setup()
    plan = build_shard_plan(setup, 1)
    assert plan.num_shards == 1
    assert plan.shard_parts[0] == tuple(range(partition.num_parts))


def test_grid_partition_shards():
    """A grid with block parts usually yields multiple components."""
    net = grid_2d(8, 8)
    partition = random_connected_partition(net, 10, seed=9)
    session = PASession(net, seed=1)
    setup = session.prepare(partition)
    plan = build_shard_plan(setup, 4)
    seen = sorted(pid for shard in plan.shard_parts for pid in shard)
    assert seen == list(range(partition.num_parts))
