"""The shared pool-sizing helper behind --jobs and the shard backend."""

from __future__ import annotations

import os

import pytest

from repro.procpool import lift_wall_gate, resolve_workers


def test_auto_resolves_to_cpu_count():
    assert resolve_workers("auto") == (os.cpu_count() or 1)
    assert resolve_workers(None) == (os.cpu_count() or 1)


def test_explicit_counts():
    assert resolve_workers(1) == 1
    assert resolve_workers(8) == 8
    assert resolve_workers("4") == 4


@pytest.mark.parametrize("bad", ["lots", "", "3.5", object()])
def test_unparseable_specs_raise(bad):
    with pytest.raises(ValueError):
        resolve_workers(bad)


@pytest.mark.parametrize("bad", [0, -1, "-3"])
def test_non_positive_counts_raise(bad):
    with pytest.raises(ValueError):
        resolve_workers(bad)


def test_error_class_is_configurable():
    with pytest.raises(SystemExit):
        resolve_workers("nope", error=SystemExit)
    with pytest.raises(SystemExit):
        resolve_workers(0, error=SystemExit)


def test_lift_wall_gate_defaults_but_never_overrides(monkeypatch):
    monkeypatch.delenv("REPRO_SESSION_WALL_GATE", raising=False)
    lift_wall_gate()
    assert os.environ["REPRO_SESSION_WALL_GATE"] == "0"
    monkeypatch.setenv("REPRO_SESSION_WALL_GATE", "1")
    lift_wall_gate()
    assert os.environ["REPRO_SESSION_WALL_GATE"] == "1"
