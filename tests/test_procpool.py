"""The shared pool-sizing helper behind --jobs and the shard backend."""

from __future__ import annotations

import os

import pytest

import repro.procpool as procpool
from repro.procpool import available_cpus, lift_wall_gate, resolve_workers


def test_auto_resolves_to_available_cpus():
    assert resolve_workers("auto") == available_cpus()
    assert resolve_workers(None) == available_cpus()


def test_auto_respects_the_affinity_mask(monkeypatch):
    """cgroup-limited containers: size by what the scheduler grants."""
    monkeypatch.setattr(
        procpool.os, "sched_getaffinity", lambda pid: {0, 2, 5}, raising=False
    )
    assert available_cpus() == 3
    assert resolve_workers("auto") == 3


def test_auto_falls_back_to_cpu_count_without_affinity(monkeypatch):
    """Platforms without sched_getaffinity (macOS/Windows) keep working."""
    monkeypatch.delattr(procpool.os, "sched_getaffinity", raising=False)
    assert available_cpus() == (os.cpu_count() or 1)
    assert resolve_workers("auto") == (os.cpu_count() or 1)


def test_empty_affinity_mask_never_returns_zero(monkeypatch):
    monkeypatch.setattr(
        procpool.os, "sched_getaffinity", lambda pid: set(), raising=False
    )
    assert available_cpus() == 1


def test_explicit_counts():
    assert resolve_workers(1) == 1
    assert resolve_workers(8) == 8
    assert resolve_workers("4") == 4


@pytest.mark.parametrize("bad", ["lots", "", "3.5", object()])
def test_unparseable_specs_raise(bad):
    with pytest.raises(ValueError):
        resolve_workers(bad)


@pytest.mark.parametrize("bad", [0, -1, "-3"])
def test_non_positive_counts_raise(bad):
    with pytest.raises(ValueError):
        resolve_workers(bad)


def test_error_class_is_configurable():
    with pytest.raises(SystemExit):
        resolve_workers("nope", error=SystemExit)
    with pytest.raises(SystemExit):
        resolve_workers(0, error=SystemExit)


def test_lift_wall_gate_defaults_but_never_overrides(monkeypatch):
    monkeypatch.delenv("REPRO_SESSION_WALL_GATE", raising=False)
    lift_wall_gate()
    assert os.environ["REPRO_SESSION_WALL_GATE"] == "0"
    monkeypatch.setenv("REPRO_SESSION_WALL_GATE", "1")
    lift_wall_gate()
    assert os.environ["REPRO_SESSION_WALL_GATE"] == "1"
