"""Cross-module integration: the paper's headline comparisons, miniature."""

import math

from repro.analysis import TABLE1, kruskal_mst
from repro.algorithms import minimum_spanning_tree
from repro.baselines import block_aggregation_pa, ghs_mst
from repro.core import SUM, PASolver, solve_pa
from repro.graphs import (
    Partition,
    grid_2d,
    grid_with_apex,
    ladder,
    random_connected_partition,
    row_partition,
    torus_2d,
    with_distinct_weights,
)


def test_figure2_message_crossover():
    """E1: ours beats the naive baseline on message count as D grows."""
    cols = 12
    for rows in (10, 14):
        net = grid_with_apex(rows, cols)
        part = row_partition(rows, cols, include_apex=True)
        naive = block_aggregation_pa(
            net, part, [1] * net.n, SUM, root=rows * cols
        )
        ours = solve_pa(net, part, [1] * net.n, SUM, seed=1)
        assert ours.aggregates == naive.output
        wave_msgs = sum(
            p.messages for p in ours.ledger.phases() if p.name.startswith("pa_")
        )
        assert wave_msgs < naive.messages


def test_table1_shapes_on_families():
    """E2 miniature: constructed (b, c) within polylog of Table 1 targets."""
    cases = {
        "planar": grid_2d(5, 16),
        "genus": torus_2d(5, 10),
        "pathwidth": ladder(30),
    }
    for family, net in cases.items():
        part = random_connected_partition(net, max(2, net.n // 16), seed=3)
        solver = PASolver(net, seed=4)
        setup = solver.prepare(part)
        b, c = setup.quality()
        bounds = TABLE1[family]
        d = net.diameter_estimate()
        target_b = bounds.block_parameter(net.n, d, 2)
        target_c = bounds.congestion(net.n, d, 2)
        polylog = math.log2(net.n) ** 2
        assert b <= max(3, target_b * polylog)
        assert c <= max(3, target_c * polylog)


def test_mst_vs_ghs_tradeoff_on_deep_graph():
    """E5 miniature: GHS pays rounds on high-diameter fragments."""
    net = with_distinct_weights(grid_2d(2, 40), seed=5)
    ours = minimum_spanning_tree(net, seed=6)
    ghs = ghs_mst(net, seed=7)
    ref = kruskal_mst(net)
    assert set(ours.output) == ref
    assert set(ghs.output) == ref
    # GHS convergecasts over fragments of diameter ~n; our fragments talk
    # through shortcuts. GHS must therefore pay many more rounds than its
    # own tree depth, while staying message-cheaper.
    assert ghs.messages < ours.messages
    assert ghs.rounds > 2 * net.exact_diameter()


def test_full_pipeline_ledger_breakdown(small_random, small_random_parts):
    res = solve_pa(small_random, small_random_parts, [1] * small_random.n,
                   SUM, seed=8)
    names = {p.name for p in res.ledger.phases()}
    assert any(n.startswith("tree:") for n in names)
    assert any("setup:" in n for n in names)
    assert "pa_wave" in names and "pa_reverse" in names and "pa_replay" in names
