"""Partition machinery: validity, generators, oracles."""

import pytest

from repro.congest import InvalidPartitionError
from repro.graphs import (
    Partition,
    bfs_ball_partition,
    boundary_edges,
    grid_2d,
    part_diameters,
    partition_from_component_labels,
    path_graph,
    random_connected,
    random_connected_partition,
    row_partition,
    singleton_partition,
    validate_partition,
    whole_graph_partition,
)


def test_partition_basics():
    part = Partition([0, 0, 1, 1, 2])
    assert part.num_parts == 3
    assert part.members[1] == (2, 3)
    assert part.size_of(0) == 2
    assert len(part) == 3


def test_partition_requires_contiguous_ids():
    with pytest.raises(InvalidPartitionError):
        Partition([0, 2])


def test_from_groups_detects_overlap_and_gaps():
    with pytest.raises(InvalidPartitionError):
        Partition.from_groups([[0, 1], [1, 2]], n=3)
    with pytest.raises(InvalidPartitionError):
        Partition.from_groups([[0, 1]], n=3)


def test_validate_connected_parts():
    net = path_graph(4)
    validate_partition(net, Partition([0, 0, 1, 1]))
    with pytest.raises(InvalidPartitionError):
        validate_partition(net, Partition([0, 1, 1, 0]))  # part 0 split


def test_row_partition_is_valid_on_grid():
    rows, cols = 4, 6
    from repro.graphs import grid_with_apex

    net = grid_with_apex(rows, cols)
    part = row_partition(rows, cols, include_apex=True)
    validate_partition(net, part)
    assert part.num_parts == rows
    assert part.part_of[rows * cols] == 0  # apex joins row 0


def test_bfs_ball_partition_validity():
    net = grid_2d(6, 6)
    part = bfs_ball_partition(net, target_size=6, seed=3)
    validate_partition(net, part)
    assert part.num_parts >= 3


def test_random_connected_partition_exact_count():
    net = random_connected(40, 0.08, seed=2)
    part = random_connected_partition(net, 7, seed=5)
    validate_partition(net, part)
    assert part.num_parts == 7


def test_singleton_and_whole_partitions():
    net = path_graph(5)
    singles = singleton_partition(net)
    assert singles.num_parts == 5
    whole = whole_graph_partition(net)
    assert whole.num_parts == 1
    validate_partition(net, singles)
    validate_partition(net, whole)


def test_partition_from_component_labels_compresses():
    part = partition_from_component_labels([9, 9, 4, 4, 9])
    assert part.num_parts == 2
    assert part.part_of == (0, 0, 1, 1, 0)


def test_boundary_edges_and_diameters():
    net = path_graph(6)
    part = Partition([0, 0, 0, 1, 1, 1])
    assert boundary_edges(net, part) == [(2, 3)]
    assert part_diameters(net, part) == [2, 2]
