"""Structural oracles."""

from repro.graphs import (
    connected_components,
    cut_weight,
    cycle_graph,
    grid_2d,
    induces_connected_subgraph,
    is_bipartite_subgraph,
    is_dominating_set,
    is_k_dominating_set,
    is_spanning_tree,
    path_graph,
    subgraph_degrees,
    with_planted_cut,
)


def test_connected_components_full_graph():
    net = path_graph(5)
    assert connected_components(net) == [0] * 5


def test_connected_components_subgraph():
    net = path_graph(5)
    labels = connected_components(net, [(0, 1), (3, 4)])
    assert labels[0] == labels[1]
    assert labels[3] == labels[4]
    assert labels[0] != labels[2] != labels[3]


def test_is_spanning_tree():
    net = grid_2d(3, 3)
    path_edges = [(i, i + 1) for i in range(8) if net.has_edge(i, i + 1)]
    assert not is_spanning_tree(net, path_edges)
    snake = [(0, 1), (1, 2), (2, 5), (5, 4), (4, 3), (3, 6), (6, 7), (7, 8)]
    assert is_spanning_tree(net, snake)


def test_bipartite_checks():
    even = cycle_graph(6)
    odd = cycle_graph(5)
    assert is_bipartite_subgraph(even, list(even.edges))
    assert not is_bipartite_subgraph(odd, list(odd.edges))


def test_dominating_checks():
    net = path_graph(5)
    assert is_dominating_set(net, {1, 3})
    assert not is_dominating_set(net, {0})
    assert is_k_dominating_set(net, {2}, 2)
    assert not is_k_dominating_set(net, {0}, 2)


def test_induced_connectivity():
    net = path_graph(5)
    assert induces_connected_subgraph(net, {1, 2, 3})
    assert not induces_connected_subgraph(net, {0, 2})


def test_subgraph_degrees_and_cut_weight():
    net = with_planted_cut(
        grid_2d(2, 4), side={0, 1, 4, 5}, cut_weight_each=1, bulk_weight=100
    )
    degs = subgraph_degrees(net, [(0, 1), (1, 2)])
    assert degs[1] == 2
    assert cut_weight(net, {0, 1, 4, 5}) == 2  # two crossing edges, weight 1
