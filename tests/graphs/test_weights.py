"""Weight assignment helpers."""

from repro.graphs import (
    grid_2d,
    with_distinct_weights,
    with_planted_cut,
    with_random_weights,
    with_unit_weights,
)


def test_random_weights_in_range():
    net = with_random_weights(grid_2d(3, 4), max_weight=50, seed=1)
    assert all(1 <= net.weight(u, v) <= 50 for u, v in net.edges)


def test_unit_weights():
    net = with_unit_weights(grid_2d(3, 4))
    assert net.total_weight() == net.m


def test_distinct_weights_are_permutation():
    net = with_distinct_weights(grid_2d(3, 4), seed=2)
    weights = sorted(net.weights.values())
    assert weights == list(range(1, net.m + 1))


def test_planted_cut_weights():
    base = grid_2d(2, 6)
    side = {0, 1, 2, 6, 7, 8}
    net = with_planted_cut(base, side, cut_weight_each=1, bulk_weight=500)
    for u, v in net.edges:
        crossing = (u in side) != (v in side)
        if crossing:
            assert net.weight(u, v) == 1
        else:
            assert net.weight(u, v) >= 500
