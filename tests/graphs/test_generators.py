"""Generator structure checks for every workload family."""

import pytest

from repro.graphs import (
    balanced_binary_tree,
    barbell,
    caterpillar,
    complete_graph,
    cycle_graph,
    grid_2d,
    grid_node,
    grid_with_apex,
    k_tree,
    ladder,
    path_graph,
    preferential_attachment,
    random_connected,
    random_regular,
    random_regular_ish,
    random_tree,
    star_graph,
    torus_2d,
)


def test_path_structure():
    net = path_graph(6)
    assert net.n == 6 and net.m == 5
    assert net.exact_diameter() == 5


def test_cycle_structure():
    net = cycle_graph(8)
    assert net.m == 8
    assert all(net.degree(v) == 2 for v in range(8))


def test_star_structure():
    net = star_graph(7)
    assert net.degree(0) == 6
    assert net.exact_diameter() == 2


def test_complete_graph():
    net = complete_graph(6)
    assert net.m == 15
    assert net.exact_diameter() == 1


def test_grid_structure():
    rows, cols = 3, 5
    net = grid_2d(rows, cols)
    assert net.n == 15
    assert net.m == rows * (cols - 1) + cols * (rows - 1)
    assert net.has_edge(grid_node(1, 2, cols), grid_node(1, 3, cols))
    assert net.has_edge(grid_node(1, 2, cols), grid_node(2, 2, cols))


def test_grid_with_apex_structure():
    rows, cols = 4, 6
    net = grid_with_apex(rows, cols)
    apex = rows * cols
    assert net.n == apex + 1
    assert net.degree(apex) == cols
    for c in range(cols):
        assert net.has_edge(apex, grid_node(0, c, cols))
    # The apex pins the diameter near rows + 1 regardless of cols.
    assert net.exact_diameter() <= rows + 2


def test_torus_is_4_regular():
    net = torus_2d(4, 5)
    assert all(net.degree(v) == 4 for v in range(net.n))
    assert net.is_connected()


def test_ladder_and_caterpillar():
    lad = ladder(10)
    assert lad.n == 20
    cat = caterpillar(6, 3)
    assert cat.n == 6 + 18
    assert cat.m == cat.n - 1  # a tree
    assert cat.is_connected()


def test_k_tree_properties():
    net = k_tree(30, 3, seed=5)
    assert net.n == 30
    assert net.is_connected()
    # k-trees on > k+1 nodes have at least k*n - k(k+1)/2 edges.
    assert net.m >= 3 * 30 - 6


def test_random_tree_is_tree():
    net = random_tree(40, seed=9)
    assert net.m == 39
    assert net.is_connected()


def test_balanced_binary_tree():
    net = balanced_binary_tree(4)
    assert net.n == 31
    assert net.exact_diameter() == 8


def test_random_connected_is_connected():
    for seed in (1, 2, 3):
        net = random_connected(50, 0.03, seed=seed)
        assert net.is_connected()
        assert net.m >= 49


def test_random_regular_ish_degree():
    net = random_regular_ish(40, 4, seed=3)
    assert net.is_connected()
    avg = 2 * net.m / net.n
    assert 3.0 <= avg <= 5.0


def test_barbell_high_diameter():
    net = barbell(5, 20)
    assert net.is_connected()
    assert net.exact_diameter() >= 20


def test_generator_argument_validation():
    with pytest.raises(ValueError):
        path_graph(0)
    with pytest.raises(ValueError):
        cycle_graph(2)
    with pytest.raises(ValueError):
        torus_2d(2, 5)
    with pytest.raises(ValueError):
        k_tree(3, 3)
    with pytest.raises(ValueError):
        random_connected(5, 1.5)


def test_random_regular_exact_degree_connected_deterministic():
    net = random_regular(60, 4, seed=3)
    assert net.is_connected()
    assert set(net.degrees()) == {4}
    assert net.m == 60 * 4 // 2
    again = random_regular(60, 4, seed=3)
    assert net.edges == again.edges
    other = random_regular(60, 4, seed=4)
    assert net.edges != other.edges


def test_random_regular_odd_degree_needs_even_total():
    net = random_regular(40, 3, seed=9)
    assert set(net.degrees()) == {3}
    with pytest.raises(ValueError):
        random_regular(41, 3)  # odd n * odd degree
    with pytest.raises(ValueError):
        random_regular(10, 2)  # degree < 3
    with pytest.raises(ValueError):
        random_regular(4, 4)   # n <= degree


def test_preferential_attachment_structure():
    net = preferential_attachment(300, 3, seed=7)
    assert net.is_connected()
    # Star seed contributes `attach` edges; every later node adds `attach`.
    assert net.m == 3 + (300 - 4) * 3
    degs = net.degrees()
    assert min(degs) >= 3
    # Heavy tail: some hub well above the attachment constant.
    assert max(degs) > 12
    assert preferential_attachment(300, 3, seed=7).edges == net.edges
    with pytest.raises(ValueError):
        preferential_attachment(3, 3)
    with pytest.raises(ValueError):
        preferential_attachment(10, 0)


def test_series_parallel_structure():
    from repro.graphs import series_parallel

    net = series_parallel(50, seed=3)
    assert net.n == 50
    assert net.m == 2 * 50 - 3  # edge + two edges per attached node
    assert net.is_connected()
    # treewidth exactly 2: the decomposition oracle certifies it
    from repro.families import tree_decomposition

    td = tree_decomposition(net)
    td.validate(net)
    assert td.width == 2
    # deterministic per seed
    again = series_parallel(50, seed=3)
    assert again.edges == net.edges
    assert series_parallel(50, seed=4).edges != net.edges
    with pytest.raises(ValueError):
        series_parallel(1)


def test_random_planar_structure():
    from repro.families import euler_planar_bound
    from repro.graphs import random_planar

    net = random_planar(230, seed=5)
    assert net.n == 230
    assert net.is_connected()
    assert euler_planar_bound(net)
    # the grid skeleton is intact and some cells are triangulated,
    # some are holes: strictly between skeleton-only and full triangulation
    skeleton = random_planar(230, seed=5, hole_prob=1.0)
    full = random_planar(230, seed=5, hole_prob=0.0)
    assert skeleton.m < net.m < full.m
    assert euler_planar_bound(full)
    # deterministic per seed
    assert random_planar(230, seed=5).edges == net.edges
    with pytest.raises(ValueError):
        random_planar(3)
    with pytest.raises(ValueError):
        random_planar(100, hole_prob=1.5)
