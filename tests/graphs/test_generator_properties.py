"""Property-based generator checks: invariants across a seed sweep.

The fixed-seed structure tests in ``test_generators.py`` pin single
instances; these sweep seeds (and sizes) and assert the *invariants*
every instance must satisfy — exact degrees, exact edge counts,
connectivity, simplicity, planarity bounds, and cross-seed determinism —
for the four randomized workload generators the benchmarks scale on:
``random_regular``, ``preferential_attachment``, ``series_parallel`` and
``random_planar``.
"""

from __future__ import annotations

import pytest

from repro.graphs import (
    preferential_attachment,
    random_planar,
    random_regular,
    series_parallel,
)

SEEDS = list(range(10))


def _assert_simple(net):
    """No self-loops, no duplicate edges (in either orientation)."""
    seen = set()
    for u, v in net.edges:
        assert u != v, f"self-loop at {u}"
        key = (min(u, v), max(u, v))
        assert key not in seen, f"duplicate edge {key}"
        seen.add(key)


# ---------------------------------------------------------------------------
# random_regular: exact d-regularity, connectivity, simplicity
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("n,degree", [(16, 3), (20, 4), (31, 4)])
def test_random_regular_invariants(n, degree, seed):
    if n * degree % 2:
        n += 1  # the generator requires an even degree sum
    net = random_regular(n, degree, seed=seed)
    assert net.n == n
    assert net.m == n * degree // 2
    assert all(net.degree(v) == degree for v in range(n))
    assert net.is_connected()
    _assert_simple(net)


def test_random_regular_determinism_and_seed_sensitivity():
    a = random_regular(18, 3, seed=4)
    b = random_regular(18, 3, seed=4)
    assert list(a.edges) == list(b.edges)
    edge_sets = {tuple(random_regular(18, 3, seed=s).edges) for s in SEEDS}
    assert len(edge_sets) > 1  # seeds actually vary the draw


def test_random_regular_rejects_bad_parameters():
    with pytest.raises(ValueError):
        random_regular(10, 2)       # degree < 3
    with pytest.raises(ValueError):
        random_regular(4, 5)        # n <= degree
    with pytest.raises(ValueError):
        random_regular(9, 3)        # odd degree sum


# ---------------------------------------------------------------------------
# preferential_attachment: exact edge count, connectivity, hub growth
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("n,attach", [(20, 1), (30, 2), (30, 3)])
def test_preferential_attachment_invariants(n, attach, seed):
    net = preferential_attachment(n, attach=attach, seed=seed)
    assert net.n == n
    # A star on attach+1 nodes, then attach edges per later node.
    assert net.m == attach + (n - attach - 1) * attach
    assert net.is_connected()
    _assert_simple(net)
    # Every non-seed node has degree >= attach (its own attachments).
    assert all(net.degree(v) >= attach for v in range(attach + 1, n))


@pytest.mark.parametrize("seed", SEEDS)
def test_preferential_attachment_grows_hubs(seed):
    net = preferential_attachment(60, attach=2, seed=seed)
    max_deg = max(net.degree(v) for v in range(net.n))
    assert max_deg >= 6  # heavy tail: some hub well above the attach rate


# ---------------------------------------------------------------------------
# series_parallel: m = 2n-3, connectivity, treewidth-2 witness
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("n", [8, 21, 40])
def test_series_parallel_invariants(n, seed):
    net = series_parallel(n, seed=seed)
    assert net.n == n
    assert net.m == 2 * n - 3
    assert net.is_connected()
    _assert_simple(net)
    # 2-tree witness: a degeneracy-2 elimination order exists (every
    # 2-tree is 2-degenerate), which also certifies treewidth <= 2.
    degrees = {v: net.degree(v) for v in range(n)}
    adj = {v: set(net.neighbors[v]) for v in range(n)}
    removed = set()
    for _ in range(n):
        v = min(
            (x for x in degrees if x not in removed),
            key=lambda x: (degrees[x], x),
        )
        assert degrees[v] <= 2, "not 2-degenerate: series-parallel broken"
        removed.add(v)
        for nb in adj[v]:
            if nb not in removed:
                degrees[nb] -= 1


# ---------------------------------------------------------------------------
# random_planar: exact n, connectivity, Euler planarity bound
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("n,hole_prob", [(12, 0.0), (30, 0.25), (47, 0.6)])
def test_random_planar_invariants(n, hole_prob, seed):
    net = random_planar(n, seed=seed, hole_prob=hole_prob)
    assert net.n == n
    assert net.is_connected()
    _assert_simple(net)
    assert net.m <= 3 * n - 6  # Euler bound, the planarity sanity check
    assert net.m >= n - 1      # the intact grid skeleton spans the graph


@pytest.mark.parametrize("gen,kwargs", [
    (preferential_attachment, {"n": 25, "attach": 2}),
    (series_parallel, {"n": 25}),
    (random_planar, {"n": 25}),
])
def test_generators_are_deterministic_per_seed(gen, kwargs):
    for seed in SEEDS[:5]:
        a = gen(seed=seed, **kwargs)
        b = gen(seed=seed, **kwargs)
        assert list(a.edges) == list(b.edges)
        assert list(a.uid) == list(b.uid)


@pytest.mark.parametrize("gen,kwargs", [
    (preferential_attachment, {"n": 25, "attach": 2}),
    (series_parallel, {"n": 25}),
    (random_planar, {"n": 25, "hole_prob": 0.4}),
])
def test_generators_vary_across_seeds(gen, kwargs):
    edge_sets = {tuple(gen(seed=s, **kwargs).edges) for s in SEEDS}
    assert len(edge_sets) > 1
