"""Shared fixtures: small networks and partitions used across the suite."""

from __future__ import annotations

import pytest

from repro.congest import CostLedger, Engine, Network
from repro.graphs import (
    grid_2d,
    grid_with_apex,
    path_graph,
    random_connected,
    random_connected_partition,
    row_partition,
    with_distinct_weights,
)


@pytest.fixture
def path10() -> Network:
    return path_graph(10)


@pytest.fixture
def grid4x6() -> Network:
    return grid_2d(4, 6)


@pytest.fixture
def apex_grid():
    """(network, partition) for the Figure 2a workload at small scale."""
    rows, cols = 4, 8
    net = grid_with_apex(rows, cols)
    part = row_partition(rows, cols, include_apex=True)
    return net, part


@pytest.fixture
def small_random() -> Network:
    return random_connected(40, 0.08, seed=11)


@pytest.fixture
def small_random_parts(small_random):
    return random_connected_partition(small_random, 5, seed=12)


@pytest.fixture
def weighted_random() -> Network:
    return with_distinct_weights(random_connected(36, 0.09, seed=21), seed=22)


@pytest.fixture
def ledger() -> CostLedger:
    return CostLedger()


def make_engine(net: Network) -> Engine:
    return Engine(net)
