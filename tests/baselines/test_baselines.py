"""Prior-work baselines: correctness plus their characteristic weaknesses."""

from repro.baselines import block_aggregation_pa, flood_pa, ghs_mst
from repro.analysis import kruskal_mst
from repro.core import MIN, SUM, solve_pa
from repro.graphs import (
    Partition,
    grid_2d,
    grid_with_apex,
    path_graph,
    random_connected,
    random_connected_partition,
    row_partition,
    with_distinct_weights,
)


def expected(partition, values, fold):
    return {
        pid: fold([values[v] for v in partition.members[pid]])
        for pid in range(partition.num_parts)
    }


def test_naive_block_pa_correct_on_apex_grid(apex_grid):
    net, part = apex_grid
    values = [net.uid[v] for v in range(net.n)]
    run = block_aggregation_pa(net, part, values, MIN, root=net.n - 1)
    assert run.output == expected(part, values, min)
    per_node = run.meta["value_at_node"]
    for v in range(net.n):
        assert per_node[v] == run.output[part.part_of[v]]


def test_naive_block_pa_message_blowup_grows_with_depth():
    """The Section 3.1 lower bound: ~n*D messages for the up phase."""
    cols = 16
    messages = {}
    for rows in (4, 8, 16):
        net = grid_with_apex(rows, cols)
        part = row_partition(rows, cols, include_apex=True)
        values = [1] * net.n
        run = block_aggregation_pa(net, part, values, SUM, root=rows * cols)
        messages[rows] = run.messages / net.n
    # Messages per node grow linearly with the depth D = rows (an affine
    # trend: each value travels ~D/2 tree hops before it can merge).
    assert messages[8] > messages[4]
    assert messages[16] > 2 * messages[4]
    slope_lo = (messages[8] - messages[4]) / 4
    slope_hi = (messages[16] - messages[8]) / 8
    assert slope_hi >= 0.6 * slope_lo  # stays linear, not flattening


def test_naive_block_pa_beaten_by_subpart_pa_on_deep_grids():
    rows, cols = 12, 16
    net = grid_with_apex(rows, cols)
    part = row_partition(rows, cols, include_apex=True)
    values = [1] * net.n
    naive = block_aggregation_pa(net, part, values, SUM, root=rows * cols)
    ours = solve_pa(net, part, values, SUM, seed=1)
    assert ours.aggregates == naive.output
    # The PA waves themselves (excluding one-time construction) use far
    # fewer messages than the baseline's block aggregation.
    wave_msgs = sum(
        p.messages for p in ours.ledger.phases() if p.name.startswith("pa_")
    )
    assert wave_msgs < naive.messages


def test_flood_pa_correct(small_random, small_random_parts):
    values = [small_random.uid[v] for v in range(small_random.n)]
    run = flood_pa(small_random, small_random_parts, values, MIN)
    assert run.output == expected(small_random_parts, values, min)


def test_flood_pa_rounds_track_part_diameter():
    """A snake part of diameter ~n makes flooding round-bound ~n."""
    net = path_graph(60)
    part = Partition([0] * 60)
    run = flood_pa(net, part, [1] * 60, SUM)
    assert run.rounds >= 59  # must traverse the whole path
    assert run.output == {0: 60}


def test_ghs_mst_correct(weighted_random):
    run = ghs_mst(weighted_random, seed=1)
    assert set(run.output) == kruskal_mst(weighted_random)


def test_ghs_mst_on_grid():
    net = with_distinct_weights(grid_2d(4, 6), seed=2)
    run = ghs_mst(net, seed=3)
    assert set(run.output) == kruskal_mst(net)


def test_ghs_messages_stay_near_linear(weighted_random):
    import math

    run = ghs_mst(weighted_random, seed=4)
    bound = 8 * (weighted_random.m + weighted_random.n) * math.log2(
        weighted_random.n
    )
    assert run.messages <= bound
