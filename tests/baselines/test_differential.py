"""Baselines vs. the optimized paths: differential pins on shared instances.

The baselines (``flood_pa``, ``block_aggregation_pa``, ``ghs_mst``) and
the paper's algorithms (``solve_pa``, ``minimum_spanning_tree``) claim to
compute the *same functions* by different schedules.  These tests run
both sides on identical seeded instances and pin output equality — plus
the ``analysis.reference`` oracles as a third, sequential, opinion — so
a regression in either path (or a silent divergence between them) fails
loudly instead of being two independently-plausible answers.
"""

from __future__ import annotations

import pytest

from repro.analysis import kruskal_mst
from repro.analysis.reference import mst_weight
from repro.algorithms import minimum_spanning_tree
from repro.baselines import block_aggregation_pa, flood_pa, ghs_mst
from repro.core import MIN, SUM, solve_pa
from repro.graphs import (
    grid_2d,
    preferential_attachment,
    random_connected,
    random_connected_partition,
    with_distinct_weights,
)

MODES = ["randomized", "deterministic"]

#: Shared seeded instances: (name, network factory, #parts).
PA_INSTANCES = [
    ("random", lambda: random_connected(34, 0.08, seed=21), 5),
    ("grid", lambda: grid_2d(5, 7), 4),
    ("pref-attach", lambda: preferential_attachment(30, attach=2, seed=8), 3),
]


def _expected(partition, values, fold):
    return {
        pid: fold([values[v] for v in partition.members[pid]])
        for pid in range(partition.num_parts)
    }


@pytest.mark.parametrize("name,make_net,k", PA_INSTANCES,
                         ids=[i[0] for i in PA_INSTANCES])
@pytest.mark.parametrize("agg,fold", [(SUM, sum), (MIN, min)],
                         ids=["sum", "min"])
def test_flood_pa_matches_solve_pa(name, make_net, k, agg, fold):
    net = make_net()
    partition = random_connected_partition(net, k, seed=13)
    values = [(3 * v + 1) % 23 for v in range(net.n)]
    oracle = _expected(partition, values, fold)

    flood = flood_pa(net, partition, values, agg)
    optimized = solve_pa(net, partition, values, agg, seed=2)
    assert flood.output == oracle
    assert optimized.aggregates == oracle
    # Per-node delivery agrees everywhere too.
    flood_at = flood.meta["value_at_node"]
    for v in range(net.n):
        assert flood_at[v] == optimized.value_at_node[v] == oracle[partition.part_of[v]]


@pytest.mark.parametrize("name,make_net,k", PA_INSTANCES,
                         ids=[i[0] for i in PA_INSTANCES])
def test_block_aggregation_pa_matches_solve_pa(name, make_net, k):
    net = make_net()
    partition = random_connected_partition(net, k, seed=29)
    values = [net.uid[v] for v in range(net.n)]
    naive = block_aggregation_pa(net, partition, values, MIN)
    optimized = solve_pa(net, partition, values, MIN, seed=5)
    assert naive.output == optimized.aggregates == _expected(partition, values, min)


@pytest.mark.parametrize("mode", MODES)
@pytest.mark.parametrize("seed", [3, 17, 40])
def test_ghs_mst_matches_pa_mst_and_kruskal(mode, seed):
    net = with_distinct_weights(random_connected(32, 0.09, seed=seed), seed=seed + 1)
    baseline = ghs_mst(net, seed=seed)
    optimized = minimum_spanning_tree(net, mode=mode, seed=seed)
    oracle = frozenset(kruskal_mst(net))
    assert frozenset(baseline.output) == oracle
    assert optimized.output == oracle
    assert mst_weight(net, set(baseline.output)) == mst_weight(net, set(optimized.output))


def test_ghs_is_message_frugal_on_shared_instance():
    """The two MSTs agree on a shared high-diameter instance while
    sitting at their characteristic points of the tradeoff space: GHS
    stays message-frugal (O((m+n) log n), no shortcut construction to
    pay for), which at this scale means strictly fewer messages than the
    PA-based algorithm — whose asymptotic round advantage only cashes in
    at sizes the benchmarks (not unit tests) measure."""
    net = with_distinct_weights(grid_2d(3, 40), seed=2)  # D ~ 42
    baseline = ghs_mst(net, seed=1)
    optimized = minimum_spanning_tree(net, seed=1)
    assert frozenset(baseline.output) == optimized.output == frozenset(kruskal_mst(net))
    assert baseline.messages < optimized.messages


@pytest.mark.parametrize("mode", MODES)
def test_differential_agreement_survives_weight_permutation(mode):
    """Same topology, different weight draws: all three MST opinions keep
    agreeing (guards against tie-break divergence between the paths)."""
    base = random_connected(24, 0.1, seed=6)
    for wseed in (0, 1, 2):
        net = with_distinct_weights(base, seed=wseed)
        oracle = frozenset(kruskal_mst(net))
        assert frozenset(ghs_mst(net, seed=wseed).output) == oracle
        assert minimum_spanning_tree(net, mode=mode, seed=wseed).output == oracle
