"""The documentation stays true: quickstart runs, module maps exist.

These tests keep README.md's quickstart runnable verbatim and forbid the
docs from naming modules that do not exist — the failure mode of every
hand-maintained architecture document.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]


def _python_blocks(text: str):
    return re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)


def test_readme_exists_with_required_sections():
    readme = (REPO_ROOT / "README.md").read_text()
    for heading in ("## Install", "## Quickstart", "## Paper → code map"):
        assert heading in readme


def test_readme_quickstart_runs_verbatim():
    readme = (REPO_ROOT / "README.md").read_text()
    blocks = _python_blocks(readme)
    assert blocks, "README.md must contain a ```python quickstart block"
    namespace: dict = {}
    for block in blocks:
        exec(compile(block, "<README quickstart>", "exec"), namespace)
    # The quickstart's own asserts ran; spot-check its result object too.
    result = namespace["result"]
    assert result.rounds > 0 and result.messages > 0


@pytest.mark.parametrize("doc", ["README.md", "docs/architecture.md", "PAPER.md"])
def test_docs_name_only_existing_paths(doc):
    text = (REPO_ROOT / doc).read_text()
    referenced = set(re.findall(r"`((?:src|benchmarks|tests|examples|docs)/[\w./*-]+)`", text))
    assert referenced, f"{doc} should reference repo paths"
    missing = []
    for ref in referenced:
        if "*" in ref:
            if not list(REPO_ROOT.glob(ref)):
                missing.append(ref)
        elif not (REPO_ROOT / ref).exists():
            missing.append(ref)
    assert not missing, f"{doc} references nonexistent paths: {sorted(missing)}"


def test_readme_module_map_functions_exist():
    # Backticked `function` names attached to module rows must be real.
    readme = (REPO_ROOT / "README.md").read_text()
    assert "verify_block_parameters" in readme
    from repro.core.corefast import verify_block_parameters  # noqa: F401
