"""PASuperOps: PA-backed super-node pushes (Algorithm 9 / MST merging)."""

from repro.congest import CostLedger
from repro.core import SUM, PASolver
from repro.core.aggregation import MIN
from repro.core.no_leader import PASuperOps
from repro.graphs import Partition, path_graph


def make_ops(chosen_pairs):
    """Path of 12 nodes in three parts of four; edges between parts."""
    net = path_graph(12)
    part = Partition([0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2])
    solver = PASolver(net, seed=41)
    setup = solver.prepare(part)
    ledger = CostLedger()
    chosen = {}
    for src, dst in chosen_pairs:
        # Connect via the path edge between the parts.
        u = max(part.members[src]) if dst > src else min(part.members[src])
        v = u + 1 if dst > src else u - 1
        chosen[src] = (u, v, dst)
    ops = PASuperOps(solver, setup, chosen, ledger)
    ops.announce_requests()
    return net, part, ops


def test_push_up_counts_in_degree():
    net, part, ops = make_ops([(0, 1), (2, 1)])
    indeg = ops.push_up({0: 1, 2: 1}, SUM)
    assert indeg == {1: 2}


def test_push_down_delivers_target_value():
    net, part, ops = make_ops([(0, 1), (2, 1)])
    got = ops.push_down({0: 100, 1: 200, 2: 300})
    assert got[0] == 200
    assert got[2] == 200


def test_push_pred_delivers_source_values():
    net, part, ops = make_ops([(0, 1)])
    got = ops.push_pred({0: 77}, MIN)
    assert got[1] == 77


def test_initial_colors_are_leader_uids():
    net, part, ops = make_ops([(0, 1)])
    assert ops.initial_color(0) == net.uid[ops.setup.leaders[0]]
