"""RootedForest invariants and helpers."""

import pytest

from repro.core import ABSENT, ROOT, RootedForest, forest_from_parent_map, spanning_forest_of_subsets
from repro.graphs import grid_2d, path_graph


def test_single_tree_structure(path10):
    parent = [ROOT] + list(range(9))
    forest = RootedForest(path10, parent)
    assert forest.roots == (0,)
    assert forest.depth[9] == 9
    assert forest.height() == 9
    assert forest.children[3] == (4,)
    assert forest.root_of(7) == 0
    assert forest.path_to_root(2) == [2, 1, 0]


def test_forest_with_absent_nodes(path10):
    parent = [ROOT, 0, 1, ABSENT, ABSENT, 5 + ROOT * 0 - 6, 5, 6, ABSENT, ABSENT]
    parent[5] = ROOT
    forest = RootedForest(path10, parent)
    assert forest.roots == (0, 5)
    assert not forest.member(3)
    assert forest.size() == 6


def test_rejects_non_edge_parent(path10):
    parent = [ROOT] * 10
    parent[5] = 2  # (5, 2) is not a path edge
    with pytest.raises(ValueError):
        RootedForest(path10, parent)


def test_rejects_cycles():
    net = grid_2d(2, 2)  # 0-1, 0-2, 1-3, 2-3
    parent = [1, 3, ROOT, 2]
    parent[0] = 1
    parent[1] = 3
    parent[3] = 2
    parent[2] = 0  # cycle 0->1->3->2->0
    with pytest.raises(ValueError):
        RootedForest(net, parent)


def test_subtree_helpers(path10):
    forest = RootedForest(path10, [ROOT] + list(range(9)))
    sizes = forest.subtree_sizes()
    assert sizes[0] == 10
    assert sizes[9] == 1
    assert forest.subtree_nodes(7) == [7, 8, 9]
    assert forest.tree_edges() == [(i, i - 1) for i in range(1, 10)]


def test_restrict_roots(path10):
    parent = [ROOT, 0, 1, 2, 3, ROOT, 5, 6, 7, 8]
    forest = RootedForest(path10, parent)
    groups = forest.restrict_roots()
    assert sorted(groups[0]) == [0, 1, 2, 3, 4]
    assert sorted(groups[5]) == [5, 6, 7, 8, 9]


def test_forest_from_parent_map(path10):
    forest = forest_from_parent_map(path10, {1: 0, 2: 1}, roots=[0])
    assert forest.member(1)
    assert not forest.member(5)
    with pytest.raises(ValueError):
        forest_from_parent_map(path10, {0: 1}, roots=[0])


def test_spanning_forest_of_subsets(grid4x6):
    groups = [range(0, 12), range(12, 24)]
    forest = spanning_forest_of_subsets(grid4x6, groups)
    assert len(forest.roots) == 2
    assert forest.size() == 24
    with pytest.raises(ValueError):
        spanning_forest_of_subsets(grid4x6, [[0, 23]])  # not connected
