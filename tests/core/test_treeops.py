"""Broadcast, convergecast and claiming BFS programs."""

from repro.congest import CostLedger, Engine
from repro.core import MIN, ROOT, RootedForest, SUM, broadcast, claim_bfs, convergecast
from repro.core.treeops import FloodMinProgram
from repro.graphs import grid_2d, path_graph, star_graph


def line_forest(net):
    return RootedForest(net, [ROOT] + list(range(net.n - 1)))


def test_broadcast_reaches_everyone(path10, ledger):
    engine = Engine(path10)
    forest = line_forest(path10)
    received = broadcast(engine, forest, {0: "hello"}, ledger)
    assert all(received[v] == "hello" for v in range(10))
    stats = ledger.phases()[0]
    assert stats.rounds == forest.height()
    assert stats.messages == 9


def test_broadcast_multiple_trees(path10, ledger):
    engine = Engine(path10)
    parent = [ROOT, 0, 1, ROOT, 3, 4, ROOT, 6, 7, 8]
    forest = RootedForest(path10, parent)
    received = broadcast(engine, forest, {0: "a", 3: "b", 6: "c"}, ledger)
    assert received[2] == "a" and received[5] == "b" and received[9] == "c"


def test_convergecast_sum(path10, ledger):
    engine = Engine(path10)
    forest = line_forest(path10)
    at_root, partial = convergecast(engine, forest, SUM, [1] * 10, ledger)
    assert at_root[0] == 10
    assert partial[5] == 5  # subtree 5..9
    stats = ledger.phases()[0]
    assert stats.messages == 9


def test_convergecast_skips_none(path10, ledger):
    engine = Engine(path10)
    forest = line_forest(path10)
    values = [None] * 10
    values[7] = 42
    at_root, _ = convergecast(engine, forest, MIN, values, ledger)
    assert at_root[0] == 42


def test_convergecast_star(ledger):
    net = star_graph(8)
    engine = Engine(net)
    forest = RootedForest(net, [ROOT] + [0] * 7)
    at_root, _ = convergecast(engine, forest, SUM, list(range(8)), ledger)
    assert at_root[0] == sum(range(8))
    assert ledger.phases()[0].rounds <= 2


def test_claim_bfs_builds_spanning_tree(grid4x6, ledger):
    engine = Engine(grid4x6)
    program = claim_bfs(engine, grid4x6, {0: grid4x6.uid[0]}, ledger)
    forest = program.forest()
    assert forest.size() == grid4x6.n
    assert forest.height() == grid4x6.bfs_depths(0)[23] or forest.height() >= 1
    # BFS depths are exact hop distances.
    depths = grid4x6.bfs_depths(0)
    for v in range(grid4x6.n):
        assert program.depth_of[v] == depths[v]


def test_claim_bfs_competition_prefers_smaller_token(path10, ledger):
    engine = Engine(path10)
    program = claim_bfs(
        engine, path10, {0: 5, 9: 1}, ledger
    )
    # Token 1 (from node 9) wins ties at equal distance; the middle nodes
    # split by arrival time.
    assert program.token_of[9] == 1
    assert program.token_of[0] == 5
    assert program.token_of[4] == 5  # distance 4 from node 0, 5 from node 9
    assert program.token_of[5] == 1


def test_claim_bfs_max_depth(path10, ledger):
    engine = Engine(path10)
    program = claim_bfs(
        engine, path10, {0: 0}, ledger, max_depth=3
    )
    assert program.token_of[3] == 0
    assert program.token_of[4] is None


def test_claim_bfs_restricted(path10, ledger):
    engine = Engine(path10)
    program = claim_bfs(
        engine, path10, {0: 0}, ledger,
        allowed=lambda u, v: v != 5,
    )
    assert program.token_of[4] == 0
    assert program.token_of[5] is None


def test_flood_min_agrees_on_minimum(grid4x6):
    engine = Engine(grid4x6)
    flood = FloodMinProgram(
        grid4x6, {v: grid4x6.uid[v] for v in range(grid4x6.n)}
    )
    engine.run(flood, max_ticks=grid4x6.n + 2)
    target = min(grid4x6.uid)
    assert all(flood.best[v] == target for v in range(grid4x6.n))
