"""The per-edge priority queue discipline (Lemma 4.2 scheduling)."""

from repro.congest import Context, Engine, Inbox
from repro.core.queued import QueuedProgram
from repro.graphs import path_graph, star_graph


class Funnel(QueuedProgram):
    """All leaves push packets to the hub through their single edges;
    the hub forwards everything to leaf 1, forcing serialization."""

    name = "funnel"

    def __init__(self, net, packets_per_leaf, capacity=1):
        super().__init__(capacity=capacity)
        self.net = net
        self.packets_per_leaf = packets_per_leaf
        self.delivered = []
        self.sent_log = []

    def on_dequeue(self, src, dst, payload):
        self.sent_log.append((src, dst, payload))

    def on_start(self, ctx: Context) -> None:
        for leaf in range(2, self.net.n):
            for i in range(self.packets_per_leaf):
                self.enqueue(ctx, leaf, 0, (leaf, i), ("p", leaf, i))

    def handle(self, ctx: Context, node: int, inbox: Inbox) -> None:
        for _sender, payload in inbox:
            if node == 0:
                self.enqueue(ctx, 0, 1, (payload[1], payload[2]), payload)
            else:
                self.delivered.append(payload)


def test_queue_respects_capacity_one():
    net = star_graph(6)
    program = Funnel(net, packets_per_leaf=3)
    stats = Engine(net).run(program, max_ticks=100)
    # 4 leaves x 3 packets, each crossing two edges.
    assert len(program.delivered) == 12
    assert stats.messages == 24
    # Serialization on the hub->1 edge: at least 12 ticks.
    assert stats.ticks >= 12


def test_priority_order_on_shared_edge():
    net = star_graph(6)
    program = Funnel(net, packets_per_leaf=2)
    Engine(net).run(program, max_ticks=100)
    hub_sends = [p for s, d, p in program.sent_log if (s, d) == (0, 1)]
    # The hub enqueues with priority (leaf, i); dequeues must respect it
    # even though arrivals interleave across ticks.
    keys = [(p[1], p[2]) for p in hub_sends]
    assert keys == sorted(keys)


def test_higher_capacity_drains_faster():
    net = star_graph(6)
    slow = Funnel(net, packets_per_leaf=3, capacity=1)
    s1 = Engine(net).run(slow, max_ticks=100)
    fast = Funnel(net, packets_per_leaf=3, capacity=4)
    s2 = Engine(net).run(fast, max_ticks=100, capacity=4, rounds_per_tick=4)
    assert s2.ticks < s1.ticks
    assert len(fast.delivered) == 12


def test_fifo_within_equal_priority():
    net = path_graph(3)

    class Stream(QueuedProgram):
        name = "stream"

        def __init__(self):
            super().__init__(capacity=1)
            self.got = []

        def on_start(self, ctx):
            for i in range(5):
                self.enqueue(ctx, 0, 1, (0,), ("x", i))

        def handle(self, ctx, node, inbox):
            for _s, payload in inbox:
                self.got.append(payload[1])

    program = Stream()
    Engine(net).run(program, max_ticks=20)
    assert program.got == [0, 1, 2, 3, 4]
