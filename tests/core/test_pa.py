"""End-to-end Part-Wise Aggregation (Theorem 1.2) + Algorithm 9."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    DETERMINISTIC,
    MAX,
    MIN,
    RANDOMIZED,
    SUM,
    PASolver,
    solve_pa,
)
from repro.core.no_leader import solve_pa_without_leaders
from repro.graphs import (
    Partition,
    grid_2d,
    grid_with_apex,
    path_graph,
    random_connected,
    random_connected_partition,
    row_partition,
    singleton_partition,
    whole_graph_partition,
)


def expected_aggregates(partition, values, fold):
    return {
        pid: fold([values[v] for v in partition.members[pid]])
        for pid in range(partition.num_parts)
    }


@pytest.mark.parametrize("mode", [RANDOMIZED, DETERMINISTIC])
def test_pa_min_on_apex_grid(mode):
    rows, cols = 4, 8
    net = grid_with_apex(rows, cols)
    part = row_partition(rows, cols, include_apex=True)
    values = [net.uid[v] for v in range(net.n)]
    res = solve_pa(net, part, values, MIN, mode=mode, seed=1)
    assert res.aggregates == expected_aggregates(part, values, min)
    for v in range(net.n):
        assert res.value_at_node[v] == res.aggregates[part.part_of[v]]


@pytest.mark.parametrize("mode", [RANDOMIZED, DETERMINISTIC])
def test_pa_sum_counts_part_sizes(mode, small_random, small_random_parts):
    res = solve_pa(
        small_random, small_random_parts, [1] * small_random.n, SUM,
        mode=mode, seed=2,
    )
    expected = {
        pid: small_random_parts.size_of(pid)
        for pid in range(small_random_parts.num_parts)
    }
    assert res.aggregates == expected


def test_pa_max_aggregation(small_random, small_random_parts):
    values = [(v * 37) % 101 for v in range(small_random.n)]
    res = solve_pa(small_random, small_random_parts, values, MAX, seed=3)
    assert res.aggregates == expected_aggregates(
        small_random_parts, values, max
    )


def test_pa_singleton_partition(path10):
    part = singleton_partition(path10)
    values = list(range(10, 20))
    res = solve_pa(path10, part, values, SUM, seed=4)
    assert res.aggregates == {pid: values[pid] for pid in range(10)}


def test_pa_whole_graph_partition(grid4x6):
    part = whole_graph_partition(grid4x6)
    res = solve_pa(grid4x6, part, [1] * grid4x6.n, SUM, seed=5)
    assert res.aggregates == {0: grid4x6.n}


def test_pa_none_values_are_identity(small_random, small_random_parts):
    values = [None] * small_random.n
    for pid in range(small_random_parts.num_parts):
        values[small_random_parts.members[pid][0]] = pid + 100
    res = solve_pa(small_random, small_random_parts, values, MIN, seed=6)
    assert res.aggregates == {
        pid: pid + 100 for pid in range(small_random_parts.num_parts)
    }


def test_pa_message_budget_near_linear():
    """Theorem 1.2's O~(m) messages, with a concrete polylog envelope."""
    net = grid_2d(6, 25)
    part = Partition([r for r in range(6) for _ in range(25)])
    res = solve_pa(net, part, [1] * net.n, SUM, seed=7)
    polylog = math.log2(net.n) ** 2
    assert res.messages <= 60 * net.m * polylog


def test_pa_setup_reuse_amortizes(small_random, small_random_parts):
    solver = PASolver(small_random, seed=8)
    setup = solver.prepare(small_random_parts)
    first = solver.solve(setup, [1] * small_random.n, SUM)
    second = solver.solve(
        setup, list(range(small_random.n)), MAX, charge_setup=False
    )
    assert second.rounds < first.rounds
    assert second.aggregates == expected_aggregates(
        small_random_parts, list(range(small_random.n)), max
    )


def test_pa_rejects_bad_leader(small_random, small_random_parts):
    solver = PASolver(small_random, seed=9)
    bad_leader = small_random_parts.members[1][0]
    leaders = [bad_leader] * small_random_parts.num_parts
    with pytest.raises(ValueError):
        solver.prepare(small_random_parts, leaders=leaders)


def test_pa_rejects_disconnected_part(path10):
    part = Partition([0, 1, 0, 1, 0, 1, 0, 1, 0, 1])
    with pytest.raises(Exception):
        solve_pa(path10, part, [1] * 10, SUM, seed=10)


def test_deterministic_mode_reproducible(small_random, small_random_parts):
    r1 = solve_pa(
        small_random, small_random_parts, [1] * small_random.n, SUM,
        mode=DETERMINISTIC, seed=0,
    )
    r2 = solve_pa(
        small_random, small_random_parts, [1] * small_random.n, SUM,
        mode=DETERMINISTIC, seed=99,  # seed must not matter
    )
    assert r1.rounds == r2.rounds
    assert r1.messages == r2.messages


@settings(max_examples=10, deadline=None)
@given(
    n=st.integers(min_value=6, max_value=28),
    num_parts=st.integers(min_value=1, max_value=5),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_pa_property_random_instances(n, num_parts, seed):
    """PA computes exact part sums on arbitrary connected instances."""
    net = random_connected(n, 0.15, seed=seed)
    parts = random_connected_partition(net, min(num_parts, n), seed=seed + 1)
    values = [(v * 13 + seed) % 50 for v in range(n)]
    res = solve_pa(net, parts, values, SUM, seed=seed + 2)
    assert res.aggregates == expected_aggregates(parts, values, sum)


def test_algorithm9_pa_without_leaders():
    net = random_connected(30, 0.1, seed=15)
    parts = random_connected_partition(net, 3, seed=16)
    values = [net.uid[v] for v in range(net.n)]
    res = solve_pa_without_leaders(net, parts, values, MIN, seed=17)
    assert res.aggregates == expected_aggregates(parts, values, min)


def test_algorithm9_on_path():
    net = path_graph(12)
    parts = Partition([0] * 6 + [1] * 6)
    res = solve_pa_without_leaders(net, parts, [1] * 12, SUM, seed=18)
    assert res.aggregates == {0: 6, 1: 6}
