"""Deterministic shortcut construction (Algorithm 8)."""

from repro.congest import CostLedger, Engine
from repro.core import bfs_tree, validate_shortcut
from repro.core.det_shortcut import build_shortcut_deterministic
from repro.core.subparts_det import build_subpart_division_deterministic
from repro.graphs import (
    Partition,
    grid_2d,
    grid_with_apex,
    random_connected,
    random_connected_partition,
    row_partition,
)


def construct(net, partition, **kwargs):
    engine = Engine(net)
    ledger = CostLedger()
    leaders = [min(m, key=lambda v: net.uid[v]) for m in partition.members]
    diameter = net.diameter_estimate()
    tree = bfs_tree(engine, net, 0, CostLedger()).tree
    division = build_subpart_division_deterministic(
        engine, net, partition, leaders, diameter, ledger
    )
    build = build_shortcut_deterministic(
        engine, net, partition, division, tree, diameter, ledger, **kwargs
    )
    return build, ledger


def test_deterministic_shortcut_wellformed():
    rows, cols = 4, 10
    net = grid_with_apex(rows, cols)
    part = row_partition(rows, cols, include_apex=True)
    build, _ = construct(net, part)
    validate_shortcut(build.shortcut)


def test_block_counts_match_oracle():
    net = random_connected(50, 0.06, seed=3)
    part = random_connected_partition(net, 4, seed=4)
    build, _ = construct(net, part)
    for pid in range(part.num_parts):
        assert build.block_counts[pid] == len(
            build.shortcut.blocks_of_part(pid)
        )


def test_construction_is_deterministic():
    net = grid_2d(3, 20)
    part = Partition([r for r in range(3) for _ in range(20)])
    b1, _ = construct(net, part)
    b2, _ = construct(net, part)
    assert b1.shortcut.up_parts == b2.shortcut.up_parts


def test_small_parts_skip_construction():
    net = grid_2d(5, 5)
    part = random_connected_partition(net, 6, seed=5)
    build, _ = construct(net, part)
    diameter = net.diameter_estimate()
    for pid in range(part.num_parts):
        if part.size_of(pid) <= diameter:
            assert build.shortcut.edges_of_part(pid) == []


def test_climb_prefix_invariant_holds():
    net = grid_2d(3, 25)
    part = Partition([r for r in range(3) for _ in range(25)])
    build, _ = construct(net, part)
    sc = build.shortcut
    tree = sc.tree
    for pid in range(part.num_parts):
        for block in sc.blocks_of_part(pid):
            bottoms = [
                v for v in block
                if not any(
                    pid in sc.up_parts[c] and c in block
                    for c in tree.children[v]
                )
            ]
            for v in bottoms:
                assert part.part_of[v] == pid
