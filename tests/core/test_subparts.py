"""Randomized sub-part divisions (Algorithm 3, Definition 4.1)."""

import random

from repro.congest import CostLedger, Engine
from repro.core import PASolver, build_subpart_division_randomized, division_from_groups
from repro.graphs import (
    Partition,
    grid_2d,
    grid_with_apex,
    random_connected,
    random_connected_partition,
    row_partition,
)


def build(net, partition, diameter, seed=0):
    engine = Engine(net)
    ledger = CostLedger()
    leaders = [min(m, key=lambda v: net.uid[v]) for m in partition.members]
    division = build_subpart_division_randomized(
        engine, net, partition, leaders, diameter, ledger, random.Random(seed)
    )
    return division, ledger


def test_division_is_valid_on_grid_rows():
    rows, cols = 4, 12
    net = grid_with_apex(rows, cols)
    part = row_partition(rows, cols, include_apex=True)
    diameter = net.diameter_estimate()
    division, _ = build(net, part, diameter)
    division.validate(diameter_bound=2 * diameter)


def test_small_parts_become_single_subparts():
    net = grid_2d(3, 4)
    part = random_connected_partition(net, 4, seed=7)
    diameter = net.diameter_estimate()  # parts are tiny relative to D
    division, _ = build(net, part, diameter)
    for pid in range(part.num_parts):
        if part.size_of(pid) <= diameter:
            assert len(division.subparts_of_part(pid)) == 1
            # ... rooted at the part leader.
            assert division.subparts_of_part(pid) == [division.part_leader[pid]]


def test_subpart_count_bound_on_large_parts():
    rows, cols = 3, 40
    net = grid_2d(rows, cols)
    part = Partition([r for r in range(rows) for _ in range(cols)])
    diameter = 8  # force "large part" handling with a small D
    division, _ = build(net, part, diameter)
    import math

    log_n = math.log(net.n)
    for pid in range(part.num_parts):
        count = len(division.subparts_of_part(pid))
        bound = 8 * (part.size_of(pid) / diameter) * log_n
        assert count <= bound
        assert count >= 2  # genuinely divided


def test_subpart_trees_stay_within_parts():
    net = random_connected(60, 0.05, seed=3)
    part = random_connected_partition(net, 4, seed=4)
    division, _ = build(net, part, 5, seed=9)
    for v in range(net.n):
        assert part.part_of[division.rep_of[v]] == part.part_of[v]
        parent = division.forest.parent[v]
        if parent >= 0:
            assert part.part_of[parent] == part.part_of[v]


def test_division_cost_is_linearish():
    net = grid_2d(6, 20)
    part = Partition([0] * net.n)
    division, ledger = build(net, part, 10)
    assert ledger.messages <= 20 * net.m
    assert ledger.rounds <= 30 * 10 + 4 * net.diameter_estimate() + 60


def test_division_from_groups_fixture_helper(grid4x6):
    part = Partition([0] * 24)
    division = division_from_groups(
        grid4x6, part, leaders=[0],
        groups=[range(0, 12), range(12, 24)],
    )
    assert division.num_subparts() == 2
