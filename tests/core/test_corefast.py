"""Randomized shortcut construction (CoreFast / Algorithm 4)."""

import random

from repro.congest import CostLedger, Engine
from repro.core import (
    PASolver,
    bfs_tree,
    build_shortcut_randomized,
    build_subpart_division_randomized,
    validate_shortcut,
)
from repro.graphs import (
    Partition,
    grid_2d,
    grid_with_apex,
    random_connected,
    random_connected_partition,
    row_partition,
)


def construct(net, partition, seed=0, **kwargs):
    engine = Engine(net)
    ledger = CostLedger()
    rng = random.Random(seed)
    leaders = [min(m, key=lambda v: net.uid[v]) for m in partition.members]
    diameter = net.diameter_estimate()
    tree = bfs_tree(engine, net, 0, CostLedger()).tree
    division = build_subpart_division_randomized(
        engine, net, partition, leaders, diameter, ledger, rng
    )
    build = build_shortcut_randomized(
        engine, net, partition, division, tree, diameter, ledger, rng, **kwargs
    )
    return build, ledger, diameter


def test_constructed_shortcut_is_wellformed():
    rows, cols = 4, 12
    net = grid_with_apex(rows, cols)
    part = row_partition(rows, cols, include_apex=True)
    build, _, _ = construct(net, part)
    validate_shortcut(build.shortcut)


def test_block_counts_match_structure():
    net = random_connected(60, 0.05, seed=2)
    part = random_connected_partition(net, 5, seed=3)
    build, _, _ = construct(net, part, seed=4)
    for pid in range(part.num_parts):
        oracle = len(build.shortcut.blocks_of_part(pid))
        assert build.block_counts[pid] == oracle


def test_small_parts_get_no_shortcut_edges():
    net = grid_2d(5, 5)
    part = random_connected_partition(net, 6, seed=5)
    build, _, diameter = construct(net, part)
    for pid in range(part.num_parts):
        if part.size_of(pid) <= diameter:
            assert build.shortcut.edges_of_part(pid) == []


def test_congestion_respects_budget_growth():
    net = grid_2d(3, 30)
    part = Partition([r for r in range(3) for _ in range(30)])
    build, _, _ = construct(net, part, congestion_budget=2, grow_budget=False,
                            max_iterations=2)
    # Per run, each edge admits at most 2 * budget parts; two runs total.
    assert build.shortcut.congestion() <= 2 * (2 * 2)


def test_shortcut_edges_are_climb_prefixes():
    """Every H_i is a union of upward path prefixes from part members."""
    net = grid_2d(3, 25)
    part = Partition([r for r in range(3) for _ in range(25)])
    build, _, _ = construct(net, part, seed=6)
    sc = build.shortcut
    tree = sc.tree
    for pid in range(part.num_parts):
        for block in sc.blocks_of_part(pid):
            bottoms = [
                v for v in block
                if not any(
                    pid in sc.up_parts[c] and c in block
                    for c in tree.children[v]
                )
            ]
            for v in bottoms:
                assert part.part_of[v] == pid, (
                    "every minimal block node must be a claim origin"
                )


def test_message_budget_near_linear():
    net = grid_2d(4, 25)
    part = Partition([r for r in range(4) for _ in range(25)])
    build, ledger, _ = construct(net, part, seed=7)
    import math

    polylog = math.log2(net.n) ** 2
    assert ledger.messages <= 40 * net.m * polylog
