"""Deterministic sub-part divisions (Algorithm 6)."""

from repro.congest import CostLedger, Engine
from repro.core.subparts_det import build_subpart_division_deterministic
from repro.graphs import (
    Partition,
    grid_2d,
    path_graph,
    random_connected,
    random_connected_partition,
)


def build(net, partition, diameter):
    engine = Engine(net)
    ledger = CostLedger()
    leaders = [min(m, key=lambda v: net.uid[v]) for m in partition.members]
    division = build_subpart_division_deterministic(
        engine, net, partition, leaders, diameter, ledger
    )
    return division, ledger


def test_deterministic_division_valid():
    net = grid_2d(4, 15)
    part = Partition([0] * net.n)
    division, _ = build(net, part, 8)
    division.validate()


def test_complete_subparts_reach_threshold():
    net = grid_2d(3, 30)
    part = Partition([0] * net.n)
    threshold = 9
    division, _ = build(net, part, threshold)
    by_root = division.forest.restrict_roots()
    for root, members in by_root.items():
        # Every sub-part is complete: >= threshold nodes, or spans its part.
        assert len(members) >= threshold or len(members) == net.n


def test_subpart_count_bound_deterministic():
    net = grid_2d(3, 30)
    part = Partition([0] * net.n)
    threshold = 9
    division, _ = build(net, part, threshold)
    # Completes have >= threshold nodes, so at most n/threshold + 1 of them.
    assert division.num_subparts() <= net.n // threshold + 1


def test_small_parts_span_themselves():
    net = path_graph(30)
    part = Partition([v // 5 for v in range(30)])  # parts of 5 nodes
    division, _ = build(net, part, 10)
    for pid in range(part.num_parts):
        assert len(division.subparts_of_part(pid)) == 1


def test_deterministic_division_is_reproducible():
    net = random_connected(40, 0.07, seed=8)
    part = random_connected_partition(net, 3, seed=9)
    d1, _ = build(net, part, 6)
    d2, _ = build(net, part, 6)
    assert d1.forest.parent == d2.forest.parent
    assert d1.rep_of == d2.rep_of


def test_subparts_respect_part_boundaries():
    net = random_connected(50, 0.06, seed=10)
    part = random_connected_partition(net, 4, seed=11)
    division, _ = build(net, part, 5)
    for v in range(net.n):
        assert part.part_of[division.rep_of[v]] == part.part_of[v]


def test_tree_depth_bounded():
    net = grid_2d(4, 25)
    part = Partition([0] * net.n)
    threshold = 8
    division, _ = build(net, part, threshold)
    # Star joinings keep merged trees O~(threshold) deep.
    import math

    assert division.forest.height() <= 4 * threshold * math.ceil(
        math.log2(net.n)
    )
