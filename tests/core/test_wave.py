"""The Algorithm 1 waves: coverage, aggregation, reversal accounting."""

import random

from repro.congest import CostLedger, Engine
from repro.core import (
    MIN,
    SUM,
    PASolver,
    annotate_blocks,
    bfs_tree,
    division_from_groups,
    empty_shortcut,
    run_pa_waves,
    star_shortcut_for_parts,
)
from repro.graphs import (
    Partition,
    grid_2d,
    path_graph,
    random_connected,
    random_connected_partition,
)


def manual_setup(net, partition, groups, shortcut_builder):
    engine = Engine(net)
    ledger = CostLedger()
    leaders = [min(m, key=lambda v: net.uid[v]) for m in partition.members]
    tree = bfs_tree(engine, net, 0, CostLedger()).tree
    division = division_from_groups(net, partition, leaders, groups)
    shortcut = shortcut_builder(tree, partition)
    ann = annotate_blocks(engine, shortcut, CostLedger())
    return engine, ledger, division, shortcut, ann


def test_wave_covers_parts_with_empty_shortcut():
    """Coverage never depends on shortcut quality (only rounds do)."""
    net = path_graph(12)
    partition = Partition([0] * 6 + [1] * 6)
    groups = [range(0, 3), range(3, 6), range(6, 9), range(9, 12)]
    engine, ledger, division, shortcut, ann = manual_setup(
        net, partition, groups, empty_shortcut
    )
    outcome = run_pa_waves(
        engine, net, partition, division, shortcut, ann,
        [net.uid[v] for v in range(net.n)], MIN, ledger,
    )
    assert outcome.aggregates[0] == min(net.uid[v] for v in range(6))
    assert outcome.aggregates[1] == min(net.uid[v] for v in range(6, 12))
    for v in range(net.n):
        assert outcome.value_at_node[v] == outcome.aggregates[partition.part_of[v]]


def test_wave_uses_blocks_when_present():
    net = grid_2d(4, 8)
    partition = Partition([v % 4 for c in range(8) for v in range(4)])
    # Columns as parts is invalid (not connected); use rows instead.
    partition = Partition([r for r in range(4) for _ in range(8)])
    groups = [
        [r * 8 + c for c in range(4)] for r in range(4)
    ] + [
        [r * 8 + c for c in range(4, 8)] for r in range(4)
    ]
    engine, ledger, division, shortcut, ann = manual_setup(
        net, partition, groups,
        lambda tree, part: star_shortcut_for_parts(tree, part, range(4)),
    )
    outcome = run_pa_waves(
        engine, net, partition, division, shortcut, ann,
        [1] * net.n, SUM, ledger,
    )
    assert outcome.aggregates == {0: 8, 1: 8, 2: 8, 3: 8}
    # Block traffic appears in the record: some node relays ku/kd.
    tags = {
        tag
        for edges in outcome.record.out_edges.values()
        for (_dst, tag) in edges
    }
    assert "ku" in tags or "kd" in tags


def test_reversal_message_accounting_mirrors_wave():
    net = random_connected(40, 0.08, seed=5)
    partition = random_connected_partition(net, 4, seed=6)
    solver = PASolver(net, seed=7)
    setup = solver.prepare(partition)
    result = solver.solve(setup, [1] * net.n, SUM, charge_setup=False)
    phases = {p.name: p for p in result.ledger.phases()}
    wave = phases["pa_wave"]
    reverse = phases["pa_reverse"]
    replay = phases["pa_replay"]
    # One answer per wave message; replay retraces wave edges.
    assert reverse.messages == wave.messages
    assert replay.messages <= wave.messages
    assert replay.messages > 0


def test_wave_rounds_scale_with_blocks_not_part_diameter():
    """A snake-shaped part has huge diameter; shortcuts keep rounds low."""
    rows, cols = 4, 30
    net = grid_2d(rows, cols)
    partition = Partition([r for r in range(rows) for _ in range(cols)])
    solver = PASolver(net, seed=3)
    setup = solver.prepare(partition)
    result = solver.solve(setup, [1] * net.n, SUM, charge_setup=False)
    assert result.aggregates == {r: cols for r in range(rows)}


def test_randomized_delays_stay_correct():
    net = grid_2d(3, 20)
    partition = Partition([r for r in range(3) for _ in range(20)])
    for seed in (1, 2, 3):
        solver = PASolver(net, seed=seed)
        setup = solver.prepare(partition)
        result = solver.solve(setup, [net.uid[v] for v in range(net.n)], MIN,
                              charge_setup=False)
        expected = {
            pid: min(net.uid[v] for v in partition.members[pid])
            for pid in range(3)
        }
        assert result.aggregates == expected
