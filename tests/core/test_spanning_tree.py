"""BFS tree construction and leader election."""

import pytest

from repro.congest import CostLedger, Engine
from repro.core import bfs_tree, diameter_upper_bound, elect_leader_and_bfs_tree
from repro.graphs import grid_2d, path_graph, random_connected


def test_bfs_tree_depth_is_eccentricity(grid4x6, ledger):
    engine = Engine(grid4x6)
    result = bfs_tree(engine, grid4x6, 0, ledger)
    assert result.depth == grid4x6.eccentricity(0)
    assert result.tree.size() == grid4x6.n
    assert result.root == 0


def test_bfs_tree_message_bound(grid4x6, ledger):
    engine = Engine(grid4x6)
    bfs_tree(engine, grid4x6, 0, ledger)
    # Claims cross each edge at most twice plus one ack per node.
    assert ledger.messages <= 2 * grid4x6.m + grid4x6.n


def test_bfs_tree_requires_connectivity(ledger):
    from repro.congest import Network

    net = Network([(0, 1), (2, 3)])
    engine = Engine(net)
    with pytest.raises(ValueError):
        bfs_tree(engine, net, 0, ledger)


def test_election_picks_min_uid(small_random, ledger):
    engine = Engine(small_random)
    result = elect_leader_and_bfs_tree(engine, small_random, ledger)
    expected = small_random.node_of_uid(min(small_random.uid))
    assert result.root == expected
    assert result.tree.size() == small_random.n
    # Election tree depth is at most the eccentricity of the leader.
    assert result.depth <= small_random.eccentricity(expected)


def test_diameter_upper_bound(grid4x6, ledger):
    engine = Engine(grid4x6)
    result = bfs_tree(engine, grid4x6, 0, ledger)
    d = diameter_upper_bound(result)
    assert grid4x6.exact_diameter() <= d <= 2 * grid4x6.exact_diameter() + 1
