"""Algorithm 7: doubling construction on heavy paths (Figure 5 mechanics)."""

from repro.congest import CostLedger, Engine
from repro.core import bfs_tree
from repro.core.heavy_path import build_heavy_path_decomposition
from repro.core.path_shortcut import doubling_schedule, run_path_doubling_wave
from repro.graphs import path_graph


def setup_path(n):
    net = path_graph(n)
    engine = Engine(net)
    # Root at node 0: the single heavy path runs n-1 .. 0 bottom-up.
    tree = bfs_tree(engine, net, 0, CostLedger()).tree
    hpd = build_heavy_path_decomposition(engine, tree, CostLedger())
    return net, engine, tree, hpd


def test_doubling_schedule_covers_log_iterations():
    sched = doubling_schedule(16, threshold=2)
    assert len(sched) == 4
    starts = [s for s, _span in sched]
    assert starts == sorted(starts)


def test_claims_climb_and_record():
    net, engine, tree, hpd = setup_path(16)
    ledger = CostLedger()
    tops = [v for v in range(net.n) if hpd.path_top[v]]
    store = {15: {0}}  # part 0 claims from the bottom node
    claims = run_path_doubling_wave(
        engine, tree, hpd, tops, store, threshold=4, ledger=ledger,
        wave_name="t",
    )
    claimed_nodes = {v for v, pids in claims.items() if 0 in pids}
    # The claim is a contiguous prefix of the upward path from node 15.
    assert claimed_nodes, "claim must move"
    assert claimed_nodes == set(range(min(claimed_nodes), 16))


def test_breaking_at_threshold():
    net, engine, tree, hpd = setup_path(32)
    ledger = CostLedger()
    tops = [v for v in range(net.n) if hpd.path_top[v]]
    threshold = 2  # break limit = 4 distinct parts
    # Six parts all claim from the bottom node: the set is oversized at the
    # first sender, so the edge above it breaks and nothing climbs.
    store = {31: {0, 1, 2, 3, 4, 5}}
    claims = run_path_doubling_wave(
        engine, tree, hpd, tops, store, threshold=threshold, ledger=ledger,
        wave_name="t",
    )
    assert not claims  # broken before any id crossed


def test_merging_claims_from_multiple_entry_points():
    net, engine, tree, hpd = setup_path(16)
    ledger = CostLedger()
    tops = [v for v in range(net.n) if hpd.path_top[v]]
    store = {15: {0}, 11: {0}, 7: {1}}
    claims = run_path_doubling_wave(
        engine, tree, hpd, tops, store, threshold=4, ledger=ledger,
        wave_name="t",
    )
    zero_nodes = {v for v, pids in claims.items() if 0 in pids}
    one_nodes = {v for v, pids in claims.items() if 1 in pids}
    # Both parts' claims form contiguous upward runs.
    assert zero_nodes and one_nodes
    assert zero_nodes == set(range(min(zero_nodes), 16))


def test_round_bound_matches_lemma66():
    """Lemma 6.6: O(c log D + D) rounds for the doubling wave."""
    n = 64
    net, engine, tree, hpd = setup_path(n)
    ledger = CostLedger()
    tops = [v for v in range(net.n) if hpd.path_top[v]]
    threshold = 3
    store = {v: {v % 3} for v in range(40, 64)}
    run_path_doubling_wave(
        engine, tree, hpd, tops, store, threshold=threshold, ledger=ledger,
        wave_name="t",
    )
    import math

    rounds = sum(p.rounds for p in ledger.phases())
    bound = 8 * (2 * threshold + 1) * math.ceil(math.log2(n)) + 8 * n
    assert rounds <= bound
