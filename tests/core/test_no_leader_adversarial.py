"""Algorithm 9 under adversarial shapes: ties, singletons, repetition.

The recovery driver leans on :func:`solve_pa_without_leaders` for every
retry — these tests pin the re-election machinery (star-joining
coarsening with fresh leader election) on the degenerate instances a
crash can leave behind: highly symmetric graphs where every pick is a
tie, partitions shredded into singletons or a lone survivor part, and
repeated elections over the same network in both modes.
"""

import pytest

from repro.core import MAX, MIN, SUM, solve_pa
from repro.core.no_leader import solve_pa_without_leaders
from repro.graphs import (
    Partition,
    grid_2d,
    path_graph,
    random_connected,
    random_connected_partition,
    star_graph,
)


def expected(partition, values, fold):
    return {
        pid: fold(values[v] for v in members)
        for pid, members in enumerate(partition.members)
    }


# ---------------------------------------------------------------------------
# Ties: symmetric instances where every election choice is a dead heat
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("mode", ["randomized", "deterministic"])
def test_reelection_with_tied_values_and_symmetric_parts(mode):
    # A grid split into identical columns, with *equal* values
    # everywhere: part sizes tie, aggregate contributions tie, and the
    # star-joining picks see symmetric candidates — only UIDs break ties.
    net = grid_2d(4, 4)
    parts = Partition([v % 4 for v in range(net.n)])
    values = [7] * net.n
    res = solve_pa_without_leaders(net, parts, values, SUM, mode=mode, seed=3)
    assert res.aggregates == {pid: 28 for pid in range(4)}
    assert all(res.value_at_node[v] == 28 for v in range(net.n))


@pytest.mark.parametrize("mode", ["randomized", "deterministic"])
def test_star_center_ties_every_leaf(mode):
    # A star with the hub's part holding half the leaves and every other
    # leaf a singleton: all the singletons are mutually symmetric, and
    # each one's only possible pick is the hub part — maximal contention
    # on one target (parts must be connected, so leaves can't group).
    net = star_graph(9)
    parts = Partition([0] + [0] * 4 + [1, 2, 3, 4])
    values = [1] * net.n
    res = solve_pa_without_leaders(net, parts, values, SUM, mode=mode, seed=5)
    assert res.aggregates == {0: 5, 1: 1, 2: 1, 3: 1, 4: 1}


# ---------------------------------------------------------------------------
# Degenerate partitions: singletons and single survivors
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("mode", ["randomized", "deterministic"])
def test_all_singleton_parts(mode):
    # Post-crash Boruvka restarts from exactly this shape: every node is
    # its own part and its own leader.
    net = random_connected(18, 0.15, seed=4)
    parts = Partition(list(range(net.n)))
    values = [(v * 11 + 1) % 23 for v in range(net.n)]
    res = solve_pa_without_leaders(net, parts, values, MAX, mode=mode, seed=6)
    assert res.aggregates == {v: values[v] for v in range(net.n)}
    assert list(res.value_at_node) == values


@pytest.mark.parametrize("mode", ["randomized", "deterministic"])
def test_single_survivor_part_spanning_the_graph(mode):
    net = random_connected(20, 0.12, seed=8)
    parts = Partition([0] * net.n)
    values = [net.uid[v] for v in range(net.n)]
    res = solve_pa_without_leaders(net, parts, values, MIN, mode=mode, seed=9)
    assert res.aggregates == {0: min(values)}
    assert all(res.value_at_node[v] == min(values) for v in range(net.n))


def test_one_giant_part_plus_singletons():
    # One surviving part and a fringe of singleton stragglers — the
    # mixed shape a partial re-merge leaves behind.
    net = path_graph(10)
    parts = Partition([0] * 7 + [1, 2, 3])
    values = [2] * 10
    res = solve_pa_without_leaders(net, parts, values, SUM, seed=11)
    assert res.aggregates == {0: 14, 1: 2, 2: 2, 3: 2}


def test_two_node_network():
    net = path_graph(2)
    parts = Partition([0, 1])
    res = solve_pa_without_leaders(net, parts, [5, 9], SUM, seed=12)
    assert res.aggregates == {0: 5, 1: 9}


# ---------------------------------------------------------------------------
# Repeated elections on the same network
# ---------------------------------------------------------------------------

def test_repeated_elections_agree_across_seeds():
    # The recovery driver bumps the seed each retry: every seed must
    # elect its way to the same exact aggregates.
    net = random_connected(24, 0.12, seed=14)
    parts = random_connected_partition(net, 5, seed=15)
    values = [(v * 7 + 3) % 101 for v in range(net.n)]
    want = expected(parts, values, sum)
    for seed in range(5):
        res = solve_pa_without_leaders(net, parts, values, SUM, seed=seed)
        assert res.aggregates == want, f"seed {seed} diverged"


def test_repeated_elections_are_deterministic_per_seed():
    net = random_connected(16, 0.15, seed=21)
    parts = random_connected_partition(net, 4, seed=22)
    values = [v % 13 for v in range(net.n)]
    a = solve_pa_without_leaders(net, parts, values, SUM, seed=33)
    b = solve_pa_without_leaders(net, parts, values, SUM, seed=33)
    assert a.aggregates == b.aggregates
    assert a.value_at_node == b.value_at_node
    assert [(p.name, p.rounds, p.messages) for p in a.ledger.phases()] == [
        (p.name, p.rounds, p.messages) for p in b.ledger.phases()
    ]


def test_election_cost_lands_on_alg9_phases():
    # The recovery accounting splits on the alg9_ prefix; make sure the
    # election rounds actually carry it (and the final solve does not).
    net = random_connected(20, 0.12, seed=25)
    parts = random_connected_partition(net, 4, seed=26)
    values = [1] * net.n
    res = solve_pa_without_leaders(net, parts, values, SUM, seed=27)
    names = [p.name for p in res.ledger.phases()]
    assert any(n.startswith("alg9_") for n in names)
    assert any(n.startswith("alg9_final_setup:") for n in names)
    assert any(not n.startswith("alg9_") for n in names)  # the waves
    reference = solve_pa(net, parts, values, SUM, seed=27)
    assert res.aggregates == reference.aggregates
