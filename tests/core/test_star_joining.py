"""Algorithm 5: star joinings over sub-part trees."""

from repro.congest import CostLedger, Engine
from repro.core import spanning_forest_of_subsets
from repro.core.star_joining import TreeSuperOps, compute_star_joining
from repro.graphs import Partition, grid_2d, path_graph


def ring_of_subparts(n_groups, group_size):
    """Path network partitioned into consecutive groups, each a sub-part."""
    net = path_graph(n_groups * group_size)
    groups = [
        list(range(g * group_size, (g + 1) * group_size))
        for g in range(n_groups)
    ]
    forest = spanning_forest_of_subsets(net, groups)
    return net, groups, forest


def chain_edges(net, groups, forest):
    """Each group points at the next group via the connecting path edge."""
    chosen = {}
    for g in range(len(groups) - 1):
        u = groups[g][-1]
        v = groups[g + 1][0]
        sid = forest.root_of(u)
        target = forest.root_of(v)
        chosen[sid] = (u, v, target)
    return chosen


def test_star_joining_resolves_every_participant():
    net, groups, forest = ring_of_subparts(7, 3)
    chosen = chain_edges(net, groups, forest)
    engine = Engine(net)
    ledger = CostLedger()
    ops = TreeSuperOps(engine, net, forest, chosen, ledger)
    ops.announce_requests()
    receivers, joins = compute_star_joining(ops, set(chosen))
    participants = set(chosen)
    for sid in participants:
        assert (sid in receivers) != (sid in joins), (
            "every participant is exactly one of receiver/joiner"
        )


def test_joiners_point_at_receivers():
    net, groups, forest = ring_of_subparts(9, 2)
    chosen = chain_edges(net, groups, forest)
    engine = Engine(net)
    ops = TreeSuperOps(engine, net, forest, chosen, CostLedger())
    ops.announce_requests()
    receivers, joins = compute_star_joining(ops, set(chosen))
    for sid, (_u, _v, target) in joins.items():
        assert target in receivers


def test_constant_fraction_merges():
    net, groups, forest = ring_of_subparts(12, 2)
    chosen = chain_edges(net, groups, forest)
    engine = Engine(net)
    ops = TreeSuperOps(engine, net, forest, chosen, CostLedger())
    ops.announce_requests()
    _receivers, joins = compute_star_joining(ops, set(chosen))
    # Lemma 6.3: at least a third of the chain participants join.
    assert len(joins) >= len(chosen) // 3


def test_in_degree_two_makes_receiver():
    # Groups 0 and 2 both point at group 1.
    net, groups, forest = ring_of_subparts(3, 3)
    sid = [forest.root_of(g[0]) for g in groups]
    chosen = {
        sid[0]: (groups[0][-1], groups[1][0], sid[1]),
        sid[2]: (groups[2][0], groups[1][-1], sid[1]),
    }
    engine = Engine(net)
    ops = TreeSuperOps(engine, net, forest, chosen, CostLedger())
    ops.announce_requests()
    receivers, joins = compute_star_joining(ops, set(chosen))
    assert sid[1] in receivers  # in-degree 2, despite not participating
    assert set(joins) == {sid[0], sid[2]}


def test_nonparticipant_target_is_receiver():
    net, groups, forest = ring_of_subparts(2, 4)
    sid = [forest.root_of(g[0]) for g in groups]
    chosen = {sid[0]: (groups[0][-1], groups[1][0], sid[1])}
    engine = Engine(net)
    ops = TreeSuperOps(engine, net, forest, chosen, CostLedger())
    ops.announce_requests()
    receivers, joins = compute_star_joining(ops, {sid[0]})
    assert sid[1] in receivers
    assert sid[0] in joins


def test_two_cycle_resolves():
    """Mutual pointers (the MOE 2-cycle case) resolve via Cole-Vishkin."""
    net, groups, forest = ring_of_subparts(2, 3)
    sid = [forest.root_of(g[0]) for g in groups]
    chosen = {
        sid[0]: (groups[0][-1], groups[1][0], sid[1]),
        sid[1]: (groups[1][0], groups[0][-1], sid[0]),
    }
    engine = Engine(net)
    ops = TreeSuperOps(engine, net, forest, chosen, CostLedger())
    ops.announce_requests()
    receivers, joins = compute_star_joining(ops, set(chosen))
    assert len(receivers & set(sid)) == 1
    assert len(joins) == 1
