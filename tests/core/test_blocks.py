"""Distributed block annotation vs. the structural oracle."""

from repro.congest import CostLedger, Engine
from repro.core import (
    ROOT,
    RootedForest,
    Shortcut,
    annotate_blocks,
    bfs_tree,
)
from repro.graphs import Partition, grid_2d, path_graph


def test_annotation_matches_oracle_blocks(path10, ledger):
    tree = RootedForest(path10, [ROOT] + list(range(9)))
    part = Partition([0] * 5 + [1] * 5)
    up = [set() for _ in range(10)]
    up[3] = {0}
    up[4] = {0}
    up[7] = {1}
    sc = Shortcut(tree, part, up)
    engine = Engine(path10)
    ann = annotate_blocks(engine, sc, ledger)
    # Part 0's block spans nodes 2,3,4 rooted at 2 (depth 2).
    assert ann.root_depth[(3, 0)] == 2
    assert ann.root_depth[(4, 0)] == 2
    assert ann.block_id[(4, 0)] == path10.uid[2]
    # Counting token lands at the deepest chain node (a part member).
    counts = ann.block_counts(2)
    assert counts == [1, 1]


def test_annotation_counts_disjoint_blocks(path10, ledger):
    tree = RootedForest(path10, [ROOT] + list(range(9)))
    part = Partition([0] * 10)
    up = [set() for _ in range(10)]
    up[2] = {0}
    up[6] = {0}
    up[7] = {0}
    sc = Shortcut(tree, part, up)
    ann = annotate_blocks(Engine(path10), sc, ledger)
    assert ann.block_counts(1) == [2]


def test_annotation_cost_bounds(grid4x6, ledger):
    engine = Engine(grid4x6)
    tree = bfs_tree(engine, grid4x6, 0, CostLedger()).tree
    part = Partition([v % 2 for v in range(grid4x6.n)])
    # Hand the parts alternating claims up the tree (legal: prefixes).
    up = [set() for _ in range(grid4x6.n)]
    for v in range(grid4x6.n):
        if tree.parent[v] >= 0:
            up[v] = {v % 2}
    # Not a valid "connected parts" partition for PA, but annotation only
    # cares about the H_i structure, which is well-formed here.
    sc = Shortcut.__new__(Shortcut)
    sc.tree = tree
    sc.partition = part
    sc.up_parts = tuple(frozenset(s) for s in up)
    ann = annotate_blocks(engine, sc, ledger)
    stats = ledger.phases()[-1]
    # One message per H_i edge plus counting tokens.
    total_edges = sum(len(s) for s in up)
    assert stats.messages <= 2 * total_edges + grid4x6.n
