"""Heavy path decomposition: positions, ranks, light-edge bound."""

import math

from repro.congest import CostLedger, Engine
from repro.core import bfs_tree
from repro.core.heavy_path import build_heavy_path_decomposition
from repro.graphs import balanced_binary_tree, grid_2d, path_graph, random_tree


def decompose(net, root=0):
    engine = Engine(net)
    ledger = CostLedger()
    tree = bfs_tree(engine, net, root, CostLedger()).tree
    hpd = build_heavy_path_decomposition(engine, tree, ledger)
    return tree, hpd, ledger


def test_path_network_is_one_heavy_path():
    net = path_graph(12)
    tree, hpd, _ = decompose(net)
    assert sum(hpd.path_top) == 1
    assert hpd.position[11] == 1  # deepest node is the bottom
    assert hpd.position[0] == 12
    assert hpd.path_length[5] == 12
    assert hpd.rank[0] == 0


def test_every_node_on_exactly_one_path():
    net = random_tree(60, seed=4)
    tree, hpd, _ = decompose(net)
    # Walking heavy children from each top enumerates every node once.
    seen = set()
    for top in (v for v in range(net.n) if hpd.path_top[v]):
        v = top
        while v >= 0:
            assert v not in seen
            seen.add(v)
            v = hpd.heavy_child[v]
    assert seen == set(range(net.n))


def test_positions_count_from_bottom():
    net = balanced_binary_tree(3)
    tree, hpd, _ = decompose(net)
    for v in range(net.n):
        child = hpd.heavy_child[v]
        if child >= 0:
            assert hpd.position[v] == hpd.position[child] + 1
            assert hpd.path_id[v] == hpd.path_id[child]


def test_light_edges_per_root_path_logarithmic():
    net = random_tree(200, seed=9)
    tree, hpd, _ = decompose(net)
    bound = math.floor(math.log2(net.n)) + 1
    for leaf in range(net.n):
        light = 0
        v = leaf
        while tree.parent[v] >= 0:
            if not hpd.on_heavy_parent_edge[v]:
                light += 1
            v = tree.parent[v]
        assert light <= bound


def test_ranks_respect_feeding_order():
    net = random_tree(120, seed=13)
    tree, hpd, _ = decompose(net)
    # A path's rank exceeds the rank of every path feeding into it.
    for v in range(net.n):
        if hpd.path_top[v] and tree.parent[v] >= 0:
            receiver = tree.parent[v]
            assert hpd.rank[receiver] >= hpd.rank[v] + 1
    assert hpd.max_rank() <= math.floor(math.log2(net.n)) + 1


def test_decomposition_cost_linearish():
    net = grid_2d(8, 8)
    _tree, _hpd, ledger = decompose(net)
    assert ledger.messages <= 8 * net.n
