"""Tree-restricted shortcut structures (Definitions 2.1-2.3, Figure 1)."""

import pytest

from repro.congest import ShortcutValidationError
from repro.core import (
    ROOT,
    RootedForest,
    Shortcut,
    empty_shortcut,
    full_tree_shortcut,
    shortcut_hint_for_family,
    star_shortcut_for_parts,
    validate_shortcut,
)
from repro.graphs import Partition, grid_2d, path_graph


def line_tree(net):
    return RootedForest(net, [ROOT] + list(range(net.n - 1)))


def test_constructor_validates_root_and_part_ids(path10):
    tree = line_tree(path10)
    part = Partition([0] * 10)
    with pytest.raises(ShortcutValidationError):
        # The root has no parent edge to assign parts to.
        Shortcut(tree, part, [{0}] + [set()] * 9)
    with pytest.raises(ShortcutValidationError):
        Shortcut(tree, part, [set()] * 9 + [{7}])  # unknown part id


def test_congestion_and_blocks_on_path(path10):
    tree = line_tree(path10)
    part = Partition([0, 0, 0, 0, 0, 1, 1, 1, 1, 1])
    # Part 0 uses edges (6,5) and (7,6); part 1 uses (6,5): congestion 2.
    up = [set() for _ in range(10)]
    up[6] = {0, 1}
    up[7] = {0}
    sc = Shortcut(tree, part, up)
    assert sc.congestion() == 2
    blocks0 = sc.blocks_of_part(0)
    assert len(blocks0) == 1
    assert blocks0[0] == {5, 6, 7}
    assert sc.block_parameter(0) == 1
    assert sc.block_parameter(1) == 1
    validate_shortcut(sc)


def test_disjoint_blocks_counted(path10):
    tree = line_tree(path10)
    part = Partition([0] * 10)
    up = [set() for _ in range(10)]
    up[2] = {0}
    up[7] = {0}  # two separate H_0 components
    sc = Shortcut(tree, part, up)
    assert sc.block_parameter(0) == 2
    assert sc.max_block_parameter() == 2


def test_empty_shortcut_has_conventional_quality(path10):
    tree = line_tree(path10)
    part = Partition([0, 0, 0, 0, 0, 1, 1, 1, 1, 1])
    sc = empty_shortcut(tree, part)
    assert sc.quality() == (1, 1)
    assert sc.total_shortcut_edges() == 0


def test_full_tree_shortcut_quality(path10):
    tree = line_tree(path10)
    part = Partition([0, 0, 0, 0, 0, 1, 1, 1, 1, 1])
    sc = full_tree_shortcut(tree, part)
    assert sc.congestion() == 2  # both parts on every edge
    assert sc.block_parameter(0) == 1
    assert sc.block_parameter(1) == 1


def test_star_shortcut_single_block(grid4x6):
    from repro.graphs import random_connected_partition

    part = random_connected_partition(grid4x6, 4, seed=3)
    from repro.congest import CostLedger, Engine
    from repro.core import bfs_tree

    tree = bfs_tree(Engine(grid4x6), grid4x6, 0, CostLedger()).tree
    sc = star_shortcut_for_parts(tree, part, range(4))
    for pid in range(4):
        assert sc.block_parameter(pid) == 1
    validate_shortcut(sc)


def test_figure1_style_instance():
    """A 4-part instance realizing the paper's Figure 1 quantities.

    We build a tree-restricted shortcut over 4 parts in which the busiest
    tree edge carries 3 parts (c = 3) and the worst part splits into two
    blocks (b = 2) -- the quantities in the Figure 1 caption.
    """
    # A spanning tree that is just a path 0..11 over a path network.
    net = path_graph(12)
    tree = line_tree(net)
    part = Partition([0, 0, 0, 1, 1, 1, 2, 2, 2, 3, 3, 3])
    up = [set() for _ in range(12)]
    # Part 0 climbs nowhere (its nodes are at the root end).
    # Part 1 claims edges (4,3),(5,4) -> one block.
    up[4] = {1}
    up[5] = {1}
    # Part 2 claims (7,6),(8,7) and separately shares edges below.
    up[7] = {2}
    up[8] = {2}
    # Part 3 claims a long run (9,8),(10,9),(11,10) and also (4,3), giving
    # it two blocks; edge (4,3) now carries parts {1,3}, and we add part 2
    # to it as well to reach congestion 3.
    up[9] = {3}
    up[10] = {3}
    up[11] = {3}
    up[4] |= {3, 2}
    sc = Shortcut(tree, part, up)
    assert sc.congestion() == 3
    assert sc.block_parameter(3) == 2
    assert sc.max_block_parameter() == 2
    assert sc.quality() == (2, 3)


def test_down_parts_mirrors_up(path10):
    tree = line_tree(path10)
    part = Partition([0] * 10)
    up = [set() for _ in range(10)]
    up[3] = {0}
    sc = Shortcut(tree, part, up)
    down = sc.down_parts()
    assert down[2] == {3: frozenset({0})}


def test_family_hints():
    b, c = shortcut_hint_for_family("general", 100, 10)
    assert b == 1 and c == 10
    with pytest.raises(KeyError):
        shortcut_hint_for_family("hyperbolic", 100, 10)
