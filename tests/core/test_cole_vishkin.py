"""Cole-Vishkin logic: step properties and full chain coloring."""

import pytest
from hypothesis import given, strategies as st

from repro.core.cole_vishkin import (
    cv_iterations_needed,
    cv_step,
    shift_down_step,
    three_color_chain,
    validate_coloring,
)


def test_cv_step_produces_differing_colors():
    a, b = 0b1010, 0b1000
    new_a = cv_step(a, b)
    new_b = cv_step(b, a ^ 0b1)  # some other differing successor
    assert new_a != cv_step(b, a) or True  # sanity: no exception
    # The key invariant: if successor differs, my new color differs from
    # the successor's new color computed against ITS successor whenever
    # they'd collide on the same bit-index/bit pair.
    assert cv_step(a, b) != cv_step(b, a)


def test_cv_step_rejects_equal_colors():
    with pytest.raises(ValueError):
        cv_step(5, 5)


def test_cv_step_chain_end_uses_pseudo_successor():
    assert isinstance(cv_step(12, None), int)


def test_iterations_needed_is_loglog_small():
    assert cv_iterations_needed(5) <= 3
    assert cv_iterations_needed(1 << 20) <= 8


def test_shift_down_step():
    assert shift_down_step(5, 0, 1, high=5) == 2
    assert shift_down_step(4, None, 0, high=4) == 1
    assert shift_down_step(2, 0, 1, high=5) == 2  # not high: unchanged


def test_three_color_path():
    successor = {i: i + 1 for i in range(9)}
    successor[9] = None
    colors = three_color_chain(successor, {i: 100 + 7 * i for i in range(10)})
    validate_coloring(successor, colors)


def test_three_color_cycle():
    n = 12
    successor = {i: (i + 1) % n for i in range(n)}
    colors = three_color_chain(successor, {i: 3 * i + 11 for i in range(n)})
    validate_coloring(successor, colors)


def test_three_color_rejects_high_in_degree():
    successor = {0: 2, 1: 2, 2: None}
    with pytest.raises(ValueError):
        three_color_chain(successor, {0: 1, 1: 2, 2: 3})


@given(st.integers(min_value=2, max_value=60), st.randoms())
def test_three_color_random_chain_graphs(n, rng):
    """Any union of paths/cycles with distinct ids gets a proper 3-coloring."""
    nodes = list(range(n))
    rng.shuffle(nodes)
    successor = {}
    i = 0
    while i < n:
        size = min(n - i, rng.randint(1, 6))
        chunk = nodes[i:i + size]
        close = rng.random() < 0.5 and size >= 2
        for j, v in enumerate(chunk):
            if j + 1 < size:
                successor[v] = chunk[j + 1]
            else:
                successor[v] = chunk[0] if close else None
        i += size
    ids = {v: 1000 + 13 * v for v in range(n)}
    colors = three_color_chain(successor, ids)
    validate_coloring(successor, colors)
