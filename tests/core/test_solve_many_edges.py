"""``solve_many`` edge cases: empty, singleton, and identity-heavy batches.

The batched wave pass shares one setup charge across k aggregates; the
degenerate shapes (k=0, k=1) and values equal to an aggregation's
identity element must behave exactly like the sequential path.
"""

from __future__ import annotations

import pytest

from repro import PASession, PASolver
from repro.core import MIN, SUM
from repro.core.aggregation import MAX
from repro.graphs import random_connected, random_connected_partition


def _fixture():
    net = random_connected(40, 0.08, seed=11)
    partition = random_connected_partition(net, 6, seed=5)
    return net, partition


def test_empty_batch_raises_on_solver():
    net, partition = _fixture()
    solver = PASolver(net, seed=3)
    setup = solver.prepare(partition)
    with pytest.raises(ValueError):
        solver.solve_many(setup, [])


def test_empty_batch_raises_on_session():
    net, partition = _fixture()
    session = PASession(net, seed=3, batch=True)
    setup = session.prepare(partition)
    with pytest.raises(ValueError):
        session.solve_many(setup, [])


def test_phase_prefix_length_mismatch_raises():
    net, partition = _fixture()
    solver = PASolver(net, seed=3)
    setup = solver.prepare(partition)
    values = list(range(net.n))
    with pytest.raises(ValueError):
        solver.solve_many(
            setup, [(values, SUM)], phase_prefixes=["a", "b"]
        )


def test_singleton_batch_matches_solve():
    net, partition = _fixture()
    values = [(v * 7) % 53 for v in range(net.n)]

    batched = PASession(net, seed=3, batch=True)
    one = batched.solve_many(batched.prepare(partition), [(values, MIN)])
    assert len(one.per_agg) == 1

    plain = PASession(net, seed=3)
    want = plain.solve(plain.prepare(partition), values, MIN)
    assert one.per_agg[0].aggregates == want.aggregates


def test_mixed_batch_with_identity_values_matches_sequential():
    net, partition = _fixture()
    readings = [(v * 13) % 71 for v in range(net.n)]
    zeros = [0] * net.n          # SUM's identity at every node
    items = [(readings, MIN), (zeros, SUM), (readings, MAX)]

    batched = PASession(net, seed=3, batch=True)
    results = batched.solve_many(batched.prepare(partition), items)

    sequential = PASession(net, seed=3)
    setup = sequential.prepare(partition)
    for got, (values, agg) in zip(results.per_agg, items):
        want = sequential.solve(setup, values, agg, charge_setup=False)
        assert got.aggregates == want.aggregates
    # The all-identity aggregate really is all zeros.
    assert all(v == 0 for v in results.per_agg[1].aggregates.values())


def test_none_values_are_skipped_in_batch():
    """Nodes holding ``None`` contribute nothing, same as in solve()."""
    net, partition = _fixture()
    values = [v if v % 2 else None for v in range(net.n)]
    some_part = 0
    if all(values[v] is None for v in partition.members[some_part]):
        pytest.skip("part 0 is all-None on this instance")

    batched = PASession(net, seed=3, batch=True)
    results = batched.solve_many(
        batched.prepare(partition), [(values, SUM)]
    )
    expect = {
        pid: sum(values[v] for v in partition.members[pid]
                 if values[v] is not None)
        for pid in range(partition.num_parts)
        if any(values[v] is not None for v in partition.members[pid])
    }
    got = results.per_agg[0].aggregates
    for pid, total in expect.items():
        assert got[pid] == total
