"""Aggregation functions, including property-based checks."""

import pytest
from hypothesis import given, strategies as st

from repro.core import (
    AND,
    MAX,
    MIN,
    MIN_TUPLE,
    OR,
    SUM,
    XOR,
    Aggregation,
    validate_aggregation,
)


def test_fold_skips_none():
    assert SUM.fold([1, None, 2, None, 3]) == 6
    assert MIN.fold([None, None]) is None


def test_merge_handles_none():
    assert MIN.merge(None, 5) == 5
    assert MIN.merge(5, None) == 5
    assert MIN.merge(3, 5) == 3


def test_min_tuple_is_lexicographic():
    a = (3, 100, 1)
    b = (3, 5, 900)
    assert MIN_TUPLE.combine(a, b) == b


def test_validate_aggregation_accepts_stock():
    for agg in (MIN, MAX, SUM, OR, AND, XOR):
        validate_aggregation(agg, [0, 1, 5, 7])


def test_validate_aggregation_rejects_noncommutative():
    bad = Aggregation("sub", lambda a, b: a - b)
    with pytest.raises(ValueError):
        validate_aggregation(bad, [1, 2, 3])


def test_validate_aggregation_rejects_nonassociative():
    bad = Aggregation("avg", lambda a, b: (a + b) // 2)
    with pytest.raises(ValueError):
        validate_aggregation(bad, [0, 1, 2, 5])


@given(st.lists(st.integers(min_value=-1000, max_value=1000), min_size=1))
def test_fold_sum_matches_builtin(values):
    assert SUM.fold(values) == sum(values)


@given(st.lists(st.integers(), min_size=1))
def test_fold_min_matches_builtin(values):
    assert MIN.fold(values) == min(values)


@given(
    st.lists(st.integers(min_value=0, max_value=255), min_size=1),
    st.randoms(),
)
def test_xor_fold_order_independent(values, rng):
    shuffled = list(values)
    rng.shuffle(shuffled)
    assert XOR.fold(values) == XOR.fold(shuffled)
