"""Decomposition oracle validity: certificates, widths, planarity sanity."""

import pytest

from repro.families import (
    BFSLayering,
    DecompositionError,
    bfs_layering,
    euler_planar_bound,
    path_decomposition,
    tree_decomposition,
)
from repro.graphs import (
    caterpillar,
    complete_graph,
    grid_2d,
    k_tree,
    ladder,
    random_planar,
    series_parallel,
)


# ----------------------------------------------------------------------
# Tree decompositions
# ----------------------------------------------------------------------
def test_tree_decomposition_k_tree_exact_width():
    net = k_tree(48, 3, seed=4)
    td = tree_decomposition(net)
    td.validate(net)
    assert td.width == 3  # min-degree elimination is exact on k-trees


def test_tree_decomposition_series_parallel_width_two():
    net = series_parallel(70, seed=5)
    td = tree_decomposition(net)
    td.validate(net)
    assert td.width == 2


def test_tree_decomposition_axioms_explicitly():
    net = k_tree(30, 2, seed=6)
    td = tree_decomposition(net)
    # every edge inside some bag
    for u, v in net.edges:
        assert any(u in bag and v in bag for bag in td.bags)
    # bags containing each node form a connected subtree
    for v in range(net.n):
        ids = {i for i, bag in enumerate(td.bags) if v in bag}
        links = sum(1 for i in ids if td.parent[i] >= 0 and td.parent[i] in ids)
        assert len(ids) - links == 1
    # width matches the biggest bag
    assert td.width == max(len(bag) for bag in td.bags) - 1


def test_tree_decomposition_validate_catches_tampering():
    net = k_tree(20, 2, seed=6)
    td = tree_decomposition(net)
    bags = list(td.bags)
    bags[0] = frozenset()  # drop a bag's contents: some edge loses cover
    from repro.families import TreeDecomposition

    broken = TreeDecomposition(
        bags=tuple(bags), parent=td.parent, width=td.width
    )
    with pytest.raises(DecompositionError):
        broken.validate(net)


# ----------------------------------------------------------------------
# Path decompositions
# ----------------------------------------------------------------------
def test_path_decomposition_ladder():
    net = ladder(25)
    pd = path_decomposition(net)
    pd.validate(net)
    assert pd.width <= 3  # ladder pathwidth is 2; double-BFS stays close
    for u, v in net.edges:
        assert any(u in bag and v in bag for bag in pd.bags)


def test_path_decomposition_caterpillar():
    net = caterpillar(10, 3)
    pd = path_decomposition(net)
    pd.validate(net)
    assert pd.width <= 2  # caterpillar pathwidth is 1


def test_path_decomposition_contiguity():
    net = ladder(12)
    pd = path_decomposition(net)
    for v in range(net.n):
        positions = [i for i, bag in enumerate(pd.bags) if v in bag]
        assert positions == list(range(positions[0], positions[-1] + 1))


def test_path_decomposition_width_guard():
    with pytest.raises(DecompositionError):
        path_decomposition(complete_graph(12), width_guard=4)


def test_path_decomposition_rejects_bad_order():
    net = ladder(5)
    with pytest.raises(DecompositionError):
        path_decomposition(net, order=[0] * net.n)


# ----------------------------------------------------------------------
# BFS layerings
# ----------------------------------------------------------------------
def test_bfs_layering_grid_certificate():
    net = grid_2d(5, 7)
    layering = bfs_layering(net, 0)
    layering.validate(net)
    assert layering.num_layers == net.eccentricity(0) + 1


def test_bfs_layering_validate_catches_tampering():
    net = grid_2d(4, 4)
    layering = bfs_layering(net, 0)
    layer = list(layering.layer)
    layer[-1] += 5  # an edge now spans more than one layer
    with pytest.raises(DecompositionError):
        BFSLayering(root=0, layer=tuple(layer)).validate(net)


# ----------------------------------------------------------------------
# Planarity sanity (Euler bound)
# ----------------------------------------------------------------------
def test_euler_bound_accepts_planar_workloads():
    assert euler_planar_bound(grid_2d(8, 8))
    assert euler_planar_bound(random_planar(300, seed=9))


def test_euler_bound_rejects_dense_graphs():
    assert not euler_planar_bound(complete_graph(6))
