"""Shortcut providers: parity with the general pipeline, caps, correctness."""

import math

import pytest

from repro.core import SUM, PASolver, solve_pa, validate_shortcut
from repro.families import (
    GeneralProvider,
    PathwidthProvider,
    TreeRestrictedProvider,
    TreewidthProvider,
    build_steiner_shortcut,
    steiner_edges_of_part,
    steiner_up_parts,
)
from repro.graphs import (
    bfs_ball_partition,
    grid_2d,
    k_tree,
    ladder,
    random_connected_partition,
    random_planar,
    torus_2d,
)


def _oracle_sums(partition):
    return {pid: len(partition.members[pid]) for pid in range(partition.num_parts)}


def _assert_pa_correct(result, partition):
    assert result.aggregates == _oracle_sums(partition)
    for v in range(len(partition.part_of)):
        assert result.value_at_node[v] == len(
            partition.members[partition.part_of[v]]
        )


# ----------------------------------------------------------------------
# GeneralProvider == default pipeline, bit for bit
# ----------------------------------------------------------------------
@pytest.mark.parametrize("mode", ["randomized", "deterministic"])
def test_general_provider_bitwise_parity(mode):
    net = grid_2d(5, 8)
    part = random_connected_partition(net, 5, seed=9)
    default = PASolver(net, mode=mode, seed=6)
    setup_d = default.prepare(part)
    result_d = default.solve(setup_d, [1] * net.n, SUM)

    provided = PASolver(net, mode=mode, seed=6)
    setup_p = provided.prepare(
        part, shortcut_provider=GeneralProvider(deterministic=(mode == "deterministic"))
    )
    result_p = provided.solve(setup_p, [1] * net.n, SUM)

    assert setup_p.shortcut.up_parts == setup_d.shortcut.up_parts
    assert setup_p.quality() == setup_d.quality()
    assert (setup_p.setup_ledger.rounds, setup_p.setup_ledger.messages) == (
        setup_d.setup_ledger.rounds, setup_d.setup_ledger.messages,
    )
    assert (result_p.rounds, result_p.messages) == (
        result_d.rounds, result_d.messages,
    )
    assert result_p.aggregates == result_d.aggregates


def test_solve_pa_accepts_provider():
    net = grid_2d(4, 6)
    part = random_connected_partition(net, 4, seed=3)
    result = solve_pa(
        net, part, [1] * net.n, SUM, seed=5,
        shortcut_provider=TreeRestrictedProvider(),
    )
    _assert_pa_correct(result, part)


# ----------------------------------------------------------------------
# Steiner core
# ----------------------------------------------------------------------
def test_steiner_edges_are_minimal_subtree():
    net = grid_2d(4, 4)
    solver = PASolver(net, seed=1, root=0)
    tree = solver.tree
    members = [5, 6, 10]
    edges = steiner_edges_of_part(tree, members)
    # the edge set spans the members and forms one connected subtree
    nodes = set()
    for child in edges:
        nodes.add(child)
        nodes.add(tree.parent[child])
    assert set(members) <= nodes
    # connectivity: nodes minus edges == 1 component
    assert len(nodes) - len(edges) == 1
    # minimality: every leaf of the subtree is a member
    child_count = {v: 0 for v in nodes}
    for child in edges:
        child_count[tree.parent[child]] += 1
    leaves = [v for v in nodes if child_count[v] == 0]
    assert set(leaves) <= set(members)


def test_steiner_skip_small_rule():
    net = grid_2d(4, 8)
    solver = PASolver(net, seed=1)
    part = random_connected_partition(net, 6, seed=2)
    # every part is smaller than the diameter estimate: all exempt
    up, congestion, admitted, truncated = steiner_up_parts(
        tree=solver.tree, partition=part, diameter=solver.diameter,
    )
    assert congestion == 0 and admitted == 0 and truncated == 0
    assert all(not parts for parts in up)
    # forcing claims produces real subtrees
    up, congestion, admitted, truncated = steiner_up_parts(
        tree=solver.tree, partition=part, diameter=solver.diameter,
        skip_small=False,
    )
    assert admitted > 0 and congestion >= 1


def test_steiner_cap_enforces_congestion_and_pa_stays_correct():
    net = grid_2d(6, 10)
    solver = PASolver(net, seed=4)
    part = random_connected_partition(net, 6, seed=7)
    ledger_cap = solver.engine  # noqa: F841 - readability
    from repro.congest.ledger import CostLedger

    ledger = CostLedger()
    build = build_steiner_shortcut(
        solver.engine, net, part, solver.tree, solver.diameter, ledger,
        cap=1, skip_small=False,
    )
    b, c = build.shortcut.quality()
    assert c == 1  # the cap is a hard guarantee
    assert b >= 1
    validate_shortcut(build.shortcut)
    # an uncapped build of the same instance admits more congestion
    ledger2 = CostLedger()
    free = build_steiner_shortcut(
        solver.engine, net, part, solver.tree, solver.diameter, ledger2,
        cap=None, skip_small=False,
    )
    assert free.shortcut.congestion() >= c
    assert ledger.messages > 0 and ledger.rounds > 0


# ----------------------------------------------------------------------
# Family providers: valid shortcuts, envelope caps, correct PA
# ----------------------------------------------------------------------
def test_tree_restricted_provider_planar():
    net = grid_2d(12, 12)
    d = net.diameter_estimate()
    part = bfs_ball_partition(net, 2 * (d + 1), seed=3)
    solver = PASolver(net, seed=6)
    provider = TreeRestrictedProvider()
    setup = solver.prepare(part, shortcut_provider=provider)
    b, c = setup.quality()
    log_n = max(1, math.ceil(math.log2(net.n)))
    assert c <= provider.congestion_cap(net.n, solver.diameter)
    assert c <= solver.diameter * log_n
    assert b <= max(3, 2 * math.ceil(math.log2(max(2, solver.diameter))))
    validate_shortcut(setup.shortcut)
    result = solver.solve(setup, [1] * net.n, SUM)
    _assert_pa_correct(result, part)


def test_tree_restricted_provider_random_planar_and_torus():
    for net, genus in ((random_planar(256, seed=8), 0), (torus_2d(9, 9), 1)):
        d = net.diameter_estimate()
        part = bfs_ball_partition(net, 2 * (d + 1), seed=3)
        solver = PASolver(net, seed=6)
        setup = solver.prepare(
            part, shortcut_provider=TreeRestrictedProvider(genus=genus)
        )
        validate_shortcut(setup.shortcut)
        result = solver.solve(setup, [1] * net.n, SUM)
        _assert_pa_correct(result, part)


def test_treewidth_provider_k_tree():
    net = k_tree(80, 3, seed=4)
    part = bfs_ball_partition(net, 20, seed=3)
    solver = PASolver(net, seed=6)
    setup = solver.prepare(part, shortcut_provider=TreewidthProvider(width=3))
    b, c = setup.quality()
    log_n = max(1, math.ceil(math.log2(net.n)))
    assert c <= 2 * 3 * log_n
    validate_shortcut(setup.shortcut)
    result = solver.solve(setup, [1] * net.n, SUM)
    _assert_pa_correct(result, part)


def test_treewidth_provider_rejects_wider_graph():
    net = k_tree(40, 4, seed=4)  # treewidth 4, declared 2
    part = bfs_ball_partition(net, 12, seed=3)
    solver = PASolver(net, seed=6)
    with pytest.raises(ValueError, match="width"):
        solver.prepare(part, shortcut_provider=TreewidthProvider(width=2))


def test_pathwidth_provider_ladder():
    net = ladder(30)
    part = bfs_ball_partition(net, 12, seed=3)
    solver = PASolver(net, seed=6)
    provider = PathwidthProvider(width=2)
    setup = solver.prepare(part, shortcut_provider=provider)
    b, c = setup.quality()
    assert c <= 2 * (3 + 1)  # gamma * (p + 1) with achieved p <= 3
    validate_shortcut(setup.shortcut)
    result = solver.solve(setup, [1] * net.n, SUM)
    _assert_pa_correct(result, part)


def test_provider_certificates_attached():
    net = grid_2d(8, 8)
    d = net.diameter_estimate()
    part = bfs_ball_partition(net, 2 * (d + 1), seed=3)
    solver = PASolver(net, seed=6)
    from repro.congest.ledger import CostLedger
    from repro.core import build_subpart_division_randomized

    import random as _random

    ledger = CostLedger()
    division = build_subpart_division_randomized(
        solver.engine, net, part, solver.default_leaders(part),
        solver.diameter, ledger, _random.Random(1),
    )
    build = TreeRestrictedProvider().build(
        solver.engine, net, part, division, solver.tree, solver.diameter,
        ledger,
    )
    from repro.families import BFSLayering

    assert isinstance(build.certificate, BFSLayering)
    build.certificate.validate(net)
