"""Family registry: single-sourced envelopes, hint delegation, factories."""

import math

import pytest

from repro.analysis import TABLE1, TABLE2_DETERMINISTIC, TABLE2_RANDOMIZED
from repro.core import shortcut_hint_for_family
from repro.families import (
    FAMILIES,
    GeneralProvider,
    PathwidthProvider,
    TreeRestrictedProvider,
    TreewidthProvider,
    family_hint,
    get_family,
    provider_for,
)


def test_registry_covers_table1():
    assert set(FAMILIES) == set(TABLE1)


def test_registry_reuses_theory_objects():
    # The envelopes have a single source of truth: the registry holds the
    # very objects from analysis.theory, not copies of the formulas.
    for name, family in FAMILIES.items():
        assert family.bounds is TABLE1[name]
        assert family.det_rounds == TABLE2_DETERMINISTIC[name]
        assert family.rand_rounds == TABLE2_RANDOMIZED[name]


def test_hint_is_ceil_of_table1():
    for name, family in FAMILIES.items():
        b, c = family_hint(name, 500, 30)
        p = family.default_param
        assert b == max(1, math.ceil(TABLE1[name].block_parameter(500, 30, p)))
        assert c == max(1, math.ceil(TABLE1[name].congestion(500, 30, p)))


def test_hint_param_override():
    b4, c4 = family_hint("treewidth", 256, 10, param=4)
    b2, c2 = family_hint("treewidth", 256, 10, param=2)
    assert b4 == 4 and b2 == 2 and c4 == 2 * c2


def test_core_hint_delegates_to_registry():
    assert shortcut_hint_for_family("general", 100, 10) == family_hint(
        "general", 100, 10
    )
    assert shortcut_hint_for_family("planar", 400, 12) == family_hint(
        "planar", 400, 12
    )
    assert shortcut_hint_for_family("treewidth", 400, 12, param=5) == (
        family_hint("treewidth", 400, 12, param=5)
    )


def test_unknown_family_raises_with_known_list():
    with pytest.raises(KeyError, match="hyperbolic"):
        family_hint("hyperbolic", 100, 10)
    with pytest.raises(KeyError, match="planar"):
        get_family("hyperbolic")


def test_provider_factories():
    assert isinstance(provider_for("general"), GeneralProvider)
    planar = provider_for("planar")
    assert isinstance(planar, TreeRestrictedProvider) and planar.genus == 0
    genus = provider_for("genus", param=3)
    assert isinstance(genus, TreeRestrictedProvider) and genus.genus == 3
    tw = provider_for("treewidth")
    assert isinstance(tw, TreewidthProvider) and tw.width == 3
    pw = provider_for("pathwidth")
    assert isinstance(pw, PathwidthProvider) and pw.width == 2


def test_provider_for_plumbs_claim_small():
    # Default: the exemption applies.
    for name in ("planar", "genus", "treewidth", "pathwidth"):
        assert provider_for(name).claim_small is False
        assert provider_for(name, claim_small=True).claim_small is True
    # general has no exemption toggle (structural in Algorithm 4): the
    # flag is accepted and ignored rather than mutating the provider.
    assert not hasattr(provider_for("general", claim_small=True), "claim_small")


def test_genus_param_widens_cap():
    flat = provider_for("genus", param=1)
    bumpy = provider_for("genus", param=9)
    assert bumpy.congestion_cap(1000, 20) >= 3 * flat.congestion_cap(1000, 20) - 3
