"""The headless benchmark runner: discovery, execution, reports."""

from __future__ import annotations

import json
import textwrap

from repro.bench import Table, drain_tables, print_table
from repro.bench.runner import (
    HeadlessBenchmark,
    bench_functions,
    discover_bench_files,
    load_bench_module,
    main,
    render_experiments_md,
    results_to_json,
    run_all,
)

GOOD_BENCH = '''
from repro.bench import print_table, record, run_once


def test_tiny(benchmark):
    def experiment():
        print_table("tiny table", ["k", "v"], [(1, 2), (3, 4)])
        return 5

    value = run_once(benchmark, experiment)
    assert value == 5
    record(benchmark, rounds=7, messages=value, extra="note")
'''

BAD_BENCH = '''
from repro.bench import record, run_once


def test_broken(benchmark):
    def experiment():
        raise RuntimeError("intentional failure")

    run_once(benchmark, experiment)
'''


def _write_bench_dir(tmp_path, files):
    bench_dir = tmp_path / "benchmarks"
    bench_dir.mkdir()
    for name, body in files.items():
        (bench_dir / name).write_text(textwrap.dedent(body))
    return bench_dir


def test_headless_benchmark_pedantic_times_and_returns():
    benchmark = HeadlessBenchmark()
    result = benchmark.pedantic(lambda: 42, rounds=1, iterations=1)
    assert result == 42
    assert benchmark.wall_seconds is not None and benchmark.wall_seconds >= 0


def test_print_table_registers_structured_table(capsys):
    drain_tables()
    print_table("a title", ["x", "yy"], [(1, 2)])
    tables = drain_tables()
    assert len(tables) == 1
    table = tables[0]
    assert isinstance(table, Table)
    assert table.title == "a title"
    assert table.rows == [("1", "2")]
    assert "| x | yy |" in table.render_markdown()
    assert drain_tables() == []  # drained


def test_discovery_and_run_all(tmp_path):
    bench_dir = _write_bench_dir(
        tmp_path, {"bench_tiny.py": GOOD_BENCH, "not_a_bench.py": "x = 1\n"}
    )
    files = discover_bench_files(bench_dir)
    assert [f.name for f in files] == ["bench_tiny.py"]

    module = load_bench_module(files[0])
    assert [fn.__name__ for fn in bench_functions(module)] == ["test_tiny"]

    results = run_all(bench_dir)
    assert len(results) == 1
    (res,) = results
    assert res.status == "ok"
    assert res.rounds == 7 and res.messages == 5
    assert res.metrics["extra"] == "note"
    assert res.wall_seconds is not None
    assert [t.title for t in res.tables] == ["tiny table"]


def test_run_all_reports_errors_without_crashing(tmp_path):
    bench_dir = _write_bench_dir(
        tmp_path, {"bench_bad.py": BAD_BENCH, "bench_tiny.py": GOOD_BENCH}
    )
    results = run_all(bench_dir)
    by_name = {r.name: r for r in results}
    assert by_name["test_broken"].status == "error"
    assert "intentional failure" in by_name["test_broken"].error
    assert by_name["test_tiny"].status == "ok"


def test_main_writes_json_and_experiments_md(tmp_path):
    bench_dir = _write_bench_dir(tmp_path, {"bench_tiny.py": GOOD_BENCH})
    out = tmp_path / "BENCH_test.json"
    md = tmp_path / "EXPERIMENTS.md"
    code = main([
        "--bench-dir", str(bench_dir),
        "--out", str(out),
        "--experiments-md", str(md),
    ])
    assert code == 0
    report = json.loads(out.read_text())
    assert report["schema"] == "repro-bench/1"
    assert report["totals"] == {
        "experiments": 1, "ok": 1, "errors": 1 - 1,
        "wall_seconds": report["totals"]["wall_seconds"],
    }
    (experiment,) = report["experiments"]
    assert experiment["rounds"] == 7
    assert experiment["messages"] == 5
    assert experiment["tables"][0]["title"] == "tiny table"

    text = md.read_text()
    assert "# EXPERIMENTS" in text
    assert "tiny table" in text
    assert "| 1 | 2 |" in text


def test_main_nonzero_exit_on_error(tmp_path):
    bench_dir = _write_bench_dir(tmp_path, {"bench_bad.py": BAD_BENCH})
    out = tmp_path / "BENCH_err.json"
    code = main([
        "--bench-dir", str(bench_dir), "--out", str(out), "--no-experiments",
    ])
    assert code == 1
    report = json.loads(out.read_text())
    assert report["totals"]["errors"] == 1
    assert "FAILED" in render_experiments_md(
        run_all(bench_dir)
    )


def test_test_function_without_benchmark_param_is_reported_not_fatal(tmp_path):
    bench_dir = _write_bench_dir(tmp_path, {"bench_mixed.py": '''
from repro.bench import record, run_once


def test_helper_without_fixture():
    pass


def test_real(benchmark):
    run_once(benchmark, lambda: None)
    record(benchmark, rounds=1, messages=2)
'''})
    results = run_all(bench_dir)
    by_name = {r.name: r for r in results}
    assert by_name["test_helper_without_fixture"].status == "error"
    assert "benchmark" in by_name["test_helper_without_fixture"].error
    assert by_name["test_real"].status == "ok"


def test_results_json_headline_ignores_non_int_rounds(tmp_path):
    bench_dir = _write_bench_dir(tmp_path, {"bench_dictround.py": '''
from repro.bench import record, run_once


def test_dict_rounds(benchmark):
    run_once(benchmark, lambda: None)
    record(benchmark, rounds={"a": 1}, messages=True)
'''})
    results = run_all(bench_dir)
    payload = results_to_json(results)
    (experiment,) = payload["experiments"]
    # dict-valued rounds and bool-valued messages are not headline counts
    assert experiment["rounds"] is None
    assert experiment["messages"] is None
