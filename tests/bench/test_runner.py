"""The headless benchmark runner: discovery, execution, reports."""

from __future__ import annotations

import json
import textwrap

from repro.bench import Table, drain_tables, print_table
from repro.bench.runner import (
    HeadlessBenchmark,
    bench_functions,
    discover_bench_files,
    load_bench_module,
    main,
    render_experiments_md,
    results_to_json,
    run_all,
)

GOOD_BENCH = '''
from repro.bench import print_table, record, run_once


def test_tiny(benchmark):
    def experiment():
        print_table("tiny table", ["k", "v"], [(1, 2), (3, 4)])
        return 5

    value = run_once(benchmark, experiment)
    assert value == 5
    record(benchmark, rounds=7, messages=value, extra="note")
'''

BAD_BENCH = '''
from repro.bench import record, run_once


def test_broken(benchmark):
    def experiment():
        raise RuntimeError("intentional failure")

    run_once(benchmark, experiment)
'''


def _write_bench_dir(tmp_path, files):
    bench_dir = tmp_path / "benchmarks"
    bench_dir.mkdir()
    for name, body in files.items():
        (bench_dir / name).write_text(textwrap.dedent(body))
    return bench_dir


def test_headless_benchmark_pedantic_times_and_returns():
    benchmark = HeadlessBenchmark()
    result = benchmark.pedantic(lambda: 42, rounds=1, iterations=1)
    assert result == 42
    assert benchmark.wall_seconds is not None and benchmark.wall_seconds >= 0


def test_print_table_registers_structured_table(capsys):
    drain_tables()
    print_table("a title", ["x", "yy"], [(1, 2)])
    tables = drain_tables()
    assert len(tables) == 1
    table = tables[0]
    assert isinstance(table, Table)
    assert table.title == "a title"
    assert table.rows == [("1", "2")]
    assert "| x | yy |" in table.render_markdown()
    assert drain_tables() == []  # drained


def test_discovery_and_run_all(tmp_path):
    bench_dir = _write_bench_dir(
        tmp_path, {"bench_tiny.py": GOOD_BENCH, "not_a_bench.py": "x = 1\n"}
    )
    files = discover_bench_files(bench_dir)
    assert [f.name for f in files] == ["bench_tiny.py"]

    module = load_bench_module(files[0])
    assert [fn.__name__ for fn in bench_functions(module)] == ["test_tiny"]

    results = run_all(bench_dir)
    assert len(results) == 1
    (res,) = results
    assert res.status == "ok"
    assert res.rounds == 7 and res.messages == 5
    assert res.metrics["extra"] == "note"
    assert res.wall_seconds is not None
    assert [t.title for t in res.tables] == ["tiny table"]


def test_run_all_reports_errors_without_crashing(tmp_path):
    bench_dir = _write_bench_dir(
        tmp_path, {"bench_bad.py": BAD_BENCH, "bench_tiny.py": GOOD_BENCH}
    )
    results = run_all(bench_dir)
    by_name = {r.name: r for r in results}
    assert by_name["test_broken"].status == "error"
    assert "intentional failure" in by_name["test_broken"].error
    assert by_name["test_tiny"].status == "ok"


def test_main_writes_json_and_experiments_md(tmp_path):
    bench_dir = _write_bench_dir(tmp_path, {"bench_tiny.py": GOOD_BENCH})
    out = tmp_path / "BENCH_test.json"
    md = tmp_path / "EXPERIMENTS.md"
    code = main([
        "--bench-dir", str(bench_dir),
        "--out", str(out),
        "--experiments-md", str(md),
    ])
    assert code == 0
    report = json.loads(out.read_text())
    assert report["schema"] == "repro-bench/2"
    assert report["totals"] == {
        "experiments": 1, "ok": 1, "errors": 1 - 1,
        "wall_seconds": report["totals"]["wall_seconds"],
    }
    (experiment,) = report["experiments"]
    assert experiment["rounds"] == 7
    assert experiment["messages"] == 5
    assert experiment["tables"][0]["title"] == "tiny table"

    text = md.read_text()
    assert "# EXPERIMENTS" in text
    assert "tiny table" in text
    assert "| 1 | 2 |" in text


def test_main_nonzero_exit_on_error(tmp_path):
    bench_dir = _write_bench_dir(tmp_path, {"bench_bad.py": BAD_BENCH})
    out = tmp_path / "BENCH_err.json"
    code = main([
        "--bench-dir", str(bench_dir), "--out", str(out), "--no-experiments",
    ])
    assert code == 1
    report = json.loads(out.read_text())
    assert report["totals"]["errors"] == 1
    assert "FAILED" in render_experiments_md(
        run_all(bench_dir)
    )


def test_test_function_without_benchmark_param_is_reported_not_fatal(tmp_path):
    bench_dir = _write_bench_dir(tmp_path, {"bench_mixed.py": '''
from repro.bench import record, run_once


def test_helper_without_fixture():
    pass


def test_real(benchmark):
    run_once(benchmark, lambda: None)
    record(benchmark, rounds=1, messages=2)
'''})
    results = run_all(bench_dir)
    by_name = {r.name: r for r in results}
    assert by_name["test_helper_without_fixture"].status == "error"
    assert "benchmark" in by_name["test_helper_without_fixture"].error
    assert by_name["test_real"].status == "ok"


def test_results_json_headline_ignores_non_int_rounds(tmp_path):
    bench_dir = _write_bench_dir(tmp_path, {"bench_dictround.py": '''
from repro.bench import record, run_once


def test_dict_rounds(benchmark):
    run_once(benchmark, lambda: None)
    record(benchmark, rounds={"a": 1}, messages=True)
'''})
    results = run_all(bench_dir)
    payload = results_to_json(results)
    (experiment,) = payload["experiments"]
    # dict-valued rounds and bool-valued messages are not headline counts
    assert experiment["rounds"] is None
    assert experiment["messages"] is None


GOOD_BENCH_B = '''
from repro.bench import record, run_once


def test_other(benchmark):
    value = run_once(benchmark, lambda: 11)
    record(benchmark, rounds=3, messages=value)
'''


def test_jobs_parallel_sweep_is_deterministic_and_identical(tmp_path):
    bench_dir = _write_bench_dir(
        tmp_path,
        {"bench_b.py": GOOD_BENCH_B, "bench_tiny.py": GOOD_BENCH,
         "bench_bad.py": BAD_BENCH},
    )
    serial = run_all(bench_dir, jobs=1)
    parallel = run_all(bench_dir, jobs=3)
    key = lambda r: (r.file, r.name, r.status, r.rounds, r.messages,
                     [t.title for t in r.tables])
    assert [key(r) for r in serial] == [key(r) for r in parallel]
    # Sorted by file name, definition order within a file.
    assert [r.file for r in parallel] == [
        "bench_b.py", "bench_bad.py", "bench_tiny.py"
    ]


def test_resolve_jobs():
    from repro.bench.runner import resolve_jobs

    assert resolve_jobs("1") == 1
    assert resolve_jobs("4") == 4  # run_all caps at the file count
    assert resolve_jobs("auto") >= 1
    import pytest
    with pytest.raises(SystemExit):
        resolve_jobs("zero")
    with pytest.raises(SystemExit):
        resolve_jobs("0")


def test_jobs_verbose_lets_tables_through(tmp_path, capfd):
    bench_dir = _write_bench_dir(
        tmp_path, {"bench_b.py": GOOD_BENCH_B, "bench_tiny.py": GOOD_BENCH}
    )
    run_all(bench_dir, jobs=2, quiet=False)
    out = capfd.readouterr().out
    assert "tiny table" in out  # worker stdout is inherited, not swallowed


def test_check_against_baseline_detects_drift_and_absence(tmp_path):
    from repro.bench.runner import check_against_baseline

    bench_dir = _write_bench_dir(tmp_path, {"bench_tiny.py": GOOD_BENCH})
    results = run_all(bench_dir)
    baseline_path = tmp_path / "BASE.json"

    # Identical baseline: parity.
    baseline_path.write_text(json.dumps(results_to_json(results), default=str))
    assert check_against_baseline(results, baseline_path, report=lambda s: None) == []

    # Drifted rounds: flagged.
    drifted = json.loads(baseline_path.read_text())
    drifted["experiments"][0]["rounds"] = 999
    baseline_path.write_text(json.dumps(drifted))
    problems = check_against_baseline(results, baseline_path, report=lambda s: None)
    assert len(problems) == 1 and "ledger drift" in problems[0]

    # Baseline with an extra experiment: its absence is a failure; a new
    # experiment not in the baseline is skipped, not flagged.
    extra = json.loads(baseline_path.read_text())
    extra["experiments"][0]["rounds"] = 7  # restore parity
    extra["experiments"].append(
        {"file": "bench_gone.py", "name": "test_gone", "status": "ok",
         "rounds": 1, "messages": 1}
    )
    baseline_path.write_text(json.dumps(extra))
    problems = check_against_baseline(results, baseline_path, report=lambda s: None)
    assert len(problems) == 1 and "missing from this run" in problems[0]


def test_main_check_against_gates_exit_code(tmp_path):
    bench_dir = _write_bench_dir(tmp_path, {"bench_tiny.py": GOOD_BENCH})
    out = tmp_path / "BENCH_a.json"
    assert main(["--bench-dir", str(bench_dir), "--out", str(out),
                 "--no-experiments"]) == 0

    # Parity against itself.
    out2 = tmp_path / "BENCH_b.json"
    assert main(["--bench-dir", str(bench_dir), "--out", str(out2),
                 "--no-experiments", "--jobs", "2",
                 "--check-against", str(out)]) == 0

    # Drift the baseline: the gate must fail with the dedicated code.
    report = json.loads(out.read_text())
    report["experiments"][0]["messages"] = 12345
    out.write_text(json.dumps(report))
    assert main(["--bench-dir", str(bench_dir), "--out", str(out2),
                 "--no-experiments", "--check-against", str(out)]) == 3

    # Missing baseline file.
    assert main(["--bench-dir", str(bench_dir), "--out", str(out2),
                 "--no-experiments",
                 "--check-against", str(tmp_path / "nope.json")]) == 2


def test_check_against_respects_only_filter(tmp_path):
    from repro.bench.runner import check_against_baseline

    bench_dir = _write_bench_dir(
        tmp_path, {"bench_b.py": GOOD_BENCH_B, "bench_tiny.py": GOOD_BENCH}
    )
    full = run_all(bench_dir)
    baseline_path = tmp_path / "BASE.json"
    baseline_path.write_text(json.dumps(results_to_json(full), default=str))

    # A filtered re-run must not report out-of-scope experiments missing.
    subset = run_all(bench_dir, only="tiny")
    assert check_against_baseline(
        subset, baseline_path, report=lambda s: None, only="tiny"
    ) == []
    # The same subset without the scope hint is flagged (gate coverage).
    problems = check_against_baseline(
        subset, baseline_path, report=lambda s: None
    )
    assert len(problems) == 1 and "missing from this run" in problems[0]

    # main() threads --only through to the gate.
    out = tmp_path / "B2.json"
    assert main(["--bench-dir", str(bench_dir), "--out", str(out),
                 "--no-experiments", "--only", "tiny",
                 "--check-against", str(baseline_path)]) == 0


def test_only_glob_matching(tmp_path):
    from repro.bench.runner import only_matches

    # Plain strings keep the historical substring behavior.
    assert only_matches(None, "bench_scaling.py")
    assert only_matches("scaling", "bench_scaling.py")
    assert not only_matches("families", "bench_scaling.py")
    # Metacharacters switch to shell-glob matching over the file name.
    assert only_matches("bench_t*.py", "bench_tiny.py")
    assert only_matches("*tiny*", "bench_tiny.py")
    assert not only_matches("bench_t*.py", "bench_b.py")
    assert only_matches("bench_?.py", "bench_b.py")

    bench_dir = _write_bench_dir(
        tmp_path, {"bench_b.py": GOOD_BENCH_B, "bench_tiny.py": GOOD_BENCH}
    )
    assert [r.file for r in run_all(bench_dir, only="bench_t*")] == [
        "bench_tiny.py"
    ]
    assert {r.file for r in run_all(bench_dir, only="bench_*")} == {
        "bench_b.py", "bench_tiny.py"
    }
    assert run_all(bench_dir, only="bench_z*") == []


def test_check_against_respects_only_glob(tmp_path):
    from repro.bench.runner import check_against_baseline

    bench_dir = _write_bench_dir(
        tmp_path, {"bench_b.py": GOOD_BENCH_B, "bench_tiny.py": GOOD_BENCH}
    )
    full = run_all(bench_dir)
    baseline_path = tmp_path / "BASE.json"
    baseline_path.write_text(json.dumps(results_to_json(full), default=str))
    subset = run_all(bench_dir, only="bench_t*")
    assert check_against_baseline(
        subset, baseline_path, report=lambda s: None, only="bench_t*"
    ) == []


SHARDED_BENCH = '''
from repro.bench import record, run_once


def test_sharded(benchmark):
    run_once(benchmark, lambda: None)
    record(
        benchmark, rounds=3, messages=9,
        workers=4, shard_wall_seconds=[0.1, 0.2],
        shard_merge_seconds=0.01, other="stays-in-metrics",
    )
'''


def test_shard_fields_promoted_to_record_top_level(tmp_path):
    """Schema /2: sharded experiments expose workers / per-shard walls /
    merge overhead as first-class record fields (still inside metrics
    too, so /1-style consumers keep working)."""
    bench_dir = _write_bench_dir(tmp_path, {"bench_shardy.py": SHARDED_BENCH})
    report = results_to_json(run_all(bench_dir))
    assert report["schema"] == "repro-bench/2"
    (experiment,) = report["experiments"]
    assert experiment["workers"] == 4
    assert experiment["shard_wall_seconds"] == [0.1, 0.2]
    assert experiment["shard_merge_seconds"] == 0.01
    assert "other" not in experiment
    assert experiment["metrics"]["other"] == "stays-in-metrics"
    assert experiment["metrics"]["workers"] == 4


def test_unsharded_records_gain_no_shard_fields(tmp_path):
    bench_dir = _write_bench_dir(tmp_path, {"bench_tiny.py": GOOD_BENCH})
    report = results_to_json(run_all(bench_dir))
    (experiment,) = report["experiments"]
    for key in ("workers", "shard_wall_seconds", "shard_merge_seconds"):
        assert key not in experiment
