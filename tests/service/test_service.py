"""PAService: multi-tenant query serving over an evolving graph.

Correctness against sequential oracles, the batching economy (shared
waves must beat per-query waves on rounds AND messages), shared-cost
tenant attribution, epoch barriers around updates, and the pool/session
lifecycle the service rides on.
"""

from __future__ import annotations

import pytest

from repro import PAService, PASession, SessionPool
from repro.graphs import random_connected, random_connected_partition
from repro.graphs.partitions import Partition
from repro.service import (
    AggregateQuery,
    max_query,
    min_query,
    sum_query,
    top_k_query,
)


def _fixture(n=40, parts=6, seed=11):
    net = random_connected(n, 0.08, seed=seed)
    partition = random_connected_partition(net, parts, seed=5)
    return net, partition


def _oracle(partition, values, fold):
    return {
        pid: fold(values[v] for v in partition.members[pid])
        for pid in range(partition.num_parts)
    }


# -- query correctness --------------------------------------------------

def test_query_kinds_match_oracles():
    net, partition = _fixture()
    readings = [(v * 17) % 101 for v in range(net.n)]
    with PAService(net, partition, seed=3) as svc:
        ids = {
            "min": svc.submit("a", min_query(readings)),
            "max": svc.submit("a", max_query(readings)),
            "sum": svc.submit("b", sum_query(readings)),
            "top2": svc.submit("b", top_k_query(readings, 2)),
        }
        svc.flush()
        assert svc.result(ids["min"]).aggregates == _oracle(
            partition, readings, min
        )
        assert svc.result(ids["max"]).aggregates == _oracle(
            partition, readings, max
        )
        assert svc.result(ids["sum"]).aggregates == _oracle(
            partition, readings, sum
        )
        top2 = svc.result(ids["top2"]).aggregates
        want = {
            pid: tuple(
                sorted((readings[v] for v in partition.members[pid]),
                       reverse=True)[:2]
            )
            for pid in range(partition.num_parts)
        }
        assert top2 == want


def test_auto_flush_at_max_batch():
    net, partition = _fixture()
    values = list(range(net.n))
    with PAService(net, partition, seed=3, max_batch=3) as svc:
        q1 = svc.submit("a", min_query(values))
        q2 = svc.submit("b", sum_query(values))
        assert svc.pending == 2
        q3 = svc.submit("c", max_query(values))  # hits max_batch
        assert svc.pending == 0
        assert svc.stats.waves == 1
        assert svc.stats.batched_queries == 3
        for qid in (q1, q2, q3):
            assert svc.result(qid).wave == 0


def test_result_pops_and_raises_while_pending():
    net, partition = _fixture()
    values = list(range(net.n))
    with PAService(net, partition, seed=3) as svc:
        qid = svc.submit("a", min_query(values))
        with pytest.raises(KeyError):
            svc.result(qid)  # still queued
        svc.flush()
        svc.result(qid)
        with pytest.raises(KeyError):
            svc.result(qid)  # pop-once


def test_value_vector_length_validated():
    net, partition = _fixture()
    with PAService(net, partition, seed=3) as svc:
        with pytest.raises(ValueError):
            svc.submit("a", min_query(list(range(net.n - 1))))


def test_query_kind_validated():
    with pytest.raises(ValueError):
        AggregateQuery("median", (1, 2, 3))
    with pytest.raises(ValueError):
        AggregateQuery("top_k", (1, 2, 3), k=0)


# -- the batching economy ----------------------------------------------

def test_batched_waves_beat_sequential_on_rounds_and_messages():
    net, partition = _fixture()
    queries = [
        min_query([(v * 7 + t) % 59 for v in range(net.n)])
        for t in range(4)
    ]

    batched = PAService(net, partition, seed=3, max_batch=4)
    for t, q in enumerate(queries):
        batched.submit(f"tenant{t}", q)
    assert batched.stats.waves == 1

    sequential = PAService(net, partition, seed=3, max_batch=1)
    for t, q in enumerate(queries):
        sequential.submit(f"tenant{t}", q)
    assert sequential.stats.waves == 4

    # Same answers...
    b = [r.aggregates for r in (batched._results[i] for i in range(4))]
    s = [r.aggregates for r in (sequential._results[i] for i in range(4))]
    assert b == s
    # ...for strictly fewer rounds AND messages (one broadcast/reversal/
    # replay instead of four).
    assert batched.ledger.rounds < sequential.ledger.rounds
    assert batched.ledger.messages < sequential.ledger.messages
    batched.close()
    sequential.close()


def test_shared_cost_tenant_attribution():
    net, partition = _fixture()
    values = list(range(net.n))
    with PAService(net, partition, seed=3, max_batch=2) as svc:
        svc.submit("a", min_query(values))
        svc.submit("b", sum_query(values))  # flushes: one shared wave
        wave_rounds = svc.result(0).rounds

        # Both tenants carry the wave's FULL cost on their own streams.
        la, lb = svc.tenant_ledger("a"), svc.tenant_ledger("b")
        assert la.rounds == lb.rounds == wave_rounds
        assert la.stream == "tenant:a" and lb.stream == "tenant:b"
        # Summing tenant ledgers over-counts the (shared) service truth:
        # the surplus is the batching win.
        served = svc.ledger.rounds - sum(
            p.rounds for p in svc.ledger.phases()
            if p.name.startswith(("prepare:", "update:", "edges:"))
        )
        assert la.rounds + lb.rounds == 2 * served


def test_solo_wave_attribution_matches_service_ledger():
    net, partition = _fixture()
    values = list(range(net.n))
    with PAService(net, partition, seed=3) as svc:
        svc.submit("only", min_query(values))
        svc.flush()
        served = svc.ledger.rounds - sum(
            p.rounds for p in svc.ledger.phases()
            if p.name.startswith("prepare:")
        )
        assert svc.tenant_ledger("only").rounds == served
        assert svc.stats.solo_queries == 1


# -- the evolving graph -------------------------------------------------

def test_update_partition_is_an_epoch_barrier():
    net, partition = _fixture()
    values = list(range(net.n))
    with PAService(net, partition, seed=3, max_batch=8) as svc:
        qid = svc.submit("a", sum_query(values))
        assert svc.pending == 1
        coarse = Partition([0] * net.n)
        svc.update_partition(coarse)
        # The pending query was served against the OLD partition...
        assert svc.pending == 0
        assert svc.result(qid).aggregates == _oracle(partition, values, sum)
        # ...and the next one sees the new epoch.
        q2 = svc.submit("a", sum_query(values))
        svc.flush()
        assert svc.result(q2).aggregates == {0: sum(values)}
        assert svc.stats.partition_updates == 1


def test_update_partition_coarsen_then_refine_reuses_the_session():
    net, partition = _fixture()
    values = [(v * 3) % 23 for v in range(net.n)]
    with PAService(net, partition, seed=3) as svc:
        svc.update_partition(Partition([0] * net.n))   # merge-only
        svc.update_partition(partition)                # split-only, back
        stats = svc.session_stats()
        assert stats["coarsenings"] == 1
        assert stats["refinements"] + stats["cache_hits"] >= 1
        qid = svc.submit("a", min_query(values))
        svc.flush()
        assert svc.result(qid).aggregates == _oracle(partition, values, min)


def test_update_edges_repairs_and_keeps_answers_fresh():
    net, partition = _fixture()
    values = [(v * 5) % 37 for v in range(net.n)]
    with PAService(net, partition, seed=3) as svc:
        before = svc.net
        missing = next(
            (u, v)
            for u in range(net.n)
            for v in range(u + 2, net.n)
            if not net.has_edge(u, v)
        )
        report = svc.update_edges(add=[missing])
        assert report.added == 1
        assert svc.net is not before
        assert svc.net.has_edge(*missing)
        assert svc.stats.edge_updates == 1

        qid = svc.submit("a", sum_query(values))
        svc.flush()
        assert svc.result(qid).aggregates == _oracle(partition, values, sum)

        # Twin service built fresh on the updated graph answers the same.
        with PAService(svc.net, partition, seed=3) as twin:
            q2 = twin.submit("a", sum_query(values))
            twin.flush()
            assert twin.result(q2).aggregates == _oracle(
                partition, values, sum
            )


def test_update_edges_flushes_pending_first():
    net, partition = _fixture()
    values = list(range(net.n))
    with PAService(net, partition, seed=3, max_batch=8) as svc:
        qid = svc.submit("a", min_query(values))
        missing = next(
            (u, v)
            for u in range(net.n)
            for v in range(u + 2, net.n)
            if not net.has_edge(u, v)
        )
        svc.update_edges(add=[missing])
        assert svc.pending == 0
        assert svc.result(qid).aggregates == _oracle(partition, values, min)


# -- lifecycle ----------------------------------------------------------

def test_close_drains_the_queue():
    net, partition = _fixture()
    values = list(range(net.n))
    svc = PAService(net, partition, seed=3, max_batch=8)
    qid = svc.submit("a", max_query(values))
    svc.close()
    assert svc.result(qid).aggregates == _oracle(partition, values, max)
    svc.close()  # idempotent


def test_adopted_session_must_have_reuse_and_batch():
    net, partition = _fixture()
    plain = PASession(net, seed=3)
    with pytest.raises(ValueError):
        PAService(partition=partition, session=plain)
    good = PASession(net, seed=3, reuse=True, batch=True)
    with PAService(partition=partition, session=good) as svc:
        assert svc.session is good


def test_constructor_validation():
    net, partition = _fixture()
    with pytest.raises(ValueError):
        PAService(net, partition, max_batch=0)
    with pytest.raises(ValueError):
        PAService(net, None)
    with pytest.raises(ValueError):
        PAService(partition=partition)  # no net, no session


# -- the session pool ---------------------------------------------------

def test_session_pool_lru_closes_evicted_sessions():
    nets = {
        key: random_connected(20 + 4 * i, 0.15, seed=i)
        for i, key in enumerate(("east", "west", "north"))
    }
    pool = SessionPool(
        lambda key: PASession(nets[key], seed=1, reuse=True),
        max_sessions=2,
    )
    east = pool.get("east")
    pool.get("west")
    pool.get("east")  # refresh: east is now most-recent
    assert pool.stats.hits == 1
    pool.get("north")  # evicts WEST (least recent), not east
    assert pool.stats.evictions == 1
    assert "west" not in pool and "east" in pool
    assert not east._closed
    pool.close()
    assert east._closed
    assert len(pool) == 0


def test_session_pool_discard_and_context_manager():
    net = random_connected(20, 0.15, seed=2)
    with SessionPool(lambda key: PASession(net, seed=1)) as pool:
        session = pool.get("only")
        pool.discard("only")
        assert session._closed
        pool.discard("unknown")  # no-op
        again = pool.get("only")
        assert again is not session
        assert pool.stats.misses == 2
    assert again._closed


def test_session_pool_rejects_zero_capacity():
    with pytest.raises(ValueError):
        SessionPool(lambda key: None, max_sessions=0)
