"""Replay exactness: a trace reproduces the run's ledger to the unit.

The acceptance property of the tracing layer, scoped to fault-free runs
(tainted recovery attempts are charged to the ledger that first sees
them, so a fault-injecting driver's main totals are re-attributions):

* tracing off vs on: the ledger is bit-for-bit identical;
* tracing on: summing the main-stream "ledger" instants equals the
  run's total rounds and messages exactly — for every engine, mode and
  seed, including runs that re-attribute costs via ``merge`` (the
  trace-once rule: ``charge`` emits, ``record``/``merge`` never do);
* two identical-seed runs' traces diff to zero drift.
"""

import pytest

from repro import PASession
from repro.algorithms import minimum_spanning_tree
from repro.core import SUM, solve_pa
from repro.graphs import (
    bfs_ball_partition,
    grid_2d,
    random_connected,
    random_connected_partition,
    with_distinct_weights,
)
from repro.obs import Tracer, diff_summaries, summarize, use_tracer

ENGINES = [
    ("scalar", {"engine_impl": "scalar"}),
    ("array", {"engine_impl": "array"}),
    ("async", {"async_mode": True}),
]


def _phase_log(ledger):
    return [
        (p.name, p.rounds, p.messages, p.ticks, p.bits)
        for p in ledger.phases()
    ]


def _event_totals(tracer, stream="main"):
    events = tracer.ledger_events(stream)
    return (
        sum(e["args"]["rounds"] for e in events),
        sum(e["args"]["messages"] for e in events),
    )


@pytest.fixture(scope="module")
def workload():
    net = grid_2d(6, 6)
    partition = bfs_ball_partition(net, target_size=9, seed=3)
    values = [(v * 5 + 1) % 31 for v in range(net.n)]
    return net, partition, values


@pytest.mark.parametrize("label,kwargs", ENGINES, ids=[e[0] for e in ENGINES])
@pytest.mark.parametrize("mode", ["randomized", "deterministic"])
@pytest.mark.parametrize("seed", [0, 7, 123])
def test_trace_replays_pa_ledger(workload, label, kwargs, mode, seed):
    net, partition, values = workload
    off = solve_pa(net, partition, values, SUM, mode=mode, seed=seed, **kwargs)

    tracer = Tracer()
    with use_tracer(tracer):
        on = solve_pa(net, partition, values, SUM, mode=mode, seed=seed, **kwargs)

    # tracing never perturbs the run
    assert on.aggregates == off.aggregates
    assert _phase_log(on.ledger) == _phase_log(off.ledger)
    # the trace replays the ledger exactly
    assert _event_totals(tracer) == (on.rounds, on.messages)
    if label == "async":
        # the synchronizer tax is on its own stream, never in main
        tax = _event_totals(tracer, "async_overhead")
        assert tax[0] > 0 and tax[1] > 0


@pytest.mark.parametrize("label,kwargs", ENGINES, ids=[e[0] for e in ENGINES])
def test_identical_seed_traces_diff_to_zero(workload, label, kwargs):
    net, partition, values = workload
    tracers = []
    for _ in range(2):
        tracer = Tracer()
        with use_tracer(tracer):
            solve_pa(net, partition, values, SUM, seed=7, **kwargs)
        tracers.append(tracer)
    drift = diff_summaries(
        summarize(tracers[0].events), summarize(tracers[1].events)
    )
    assert drift == []


def test_trace_replays_through_merge_without_double_counting():
    """merge() re-attributes traced phases; event sums must not double."""
    net = grid_2d(6, 6)
    partition = bfs_ball_partition(net, target_size=9, seed=3)
    values = [(v * 5 + 1) % 31 for v in range(net.n)]

    tracer = Tracer()
    with use_tracer(tracer):
        session = PASession(net, seed=7)
        setup = session.prepare(partition)
        res = session.solve(setup, values, SUM)
        res.ledger.merge(session.tree_ledger, prefix="tree:")
    assert _event_totals(tracer) == (res.rounds, res.messages)


def test_trace_replays_mst_ledger():
    """A full pipeline (Boruvka over PA, nested merges) still replays."""
    net = with_distinct_weights(random_connected(24, 0.12, seed=5), seed=2)
    tracer = Tracer()
    with use_tracer(tracer):
        res = minimum_spanning_tree(net, seed=3)
    assert _event_totals(tracer) == (res.rounds, res.messages)


def test_trace_replays_random_graph_partitions():
    net = random_connected(30, 0.1, seed=9)
    partition = random_connected_partition(net, 5, seed=9)
    values = list(range(net.n))
    tracer = Tracer()
    with use_tracer(tracer):
        res = solve_pa(net, partition, values, SUM, seed=1)
    assert _event_totals(tracer) == (res.rounds, res.messages)
