"""``python -m repro.obs``: summarize/diff subcommands and exit codes."""

import os
import subprocess
import sys
from pathlib import Path

from repro.congest import PhaseStats
from repro.obs import Tracer
from repro.obs.__main__ import main


def _write_trace(path, rounds=3):
    tracer = Tracer()
    tracer.ledger("main", PhaseStats("wave", rounds=rounds, messages=10, bits=80))
    tracer.ledger("main", PhaseStats("bfs", rounds=7, messages=100))
    tracer.write_chrome(path)
    return path


def test_summarize_exits_zero_and_prints_totals(tmp_path, capsys):
    trace = _write_trace(tmp_path / "a.trace.json")
    assert main(["summarize", str(trace)]) == 0
    out = capsys.readouterr().out
    assert "stream main: rounds=10 messages=110" in out
    assert "wave" in out and "bfs" in out


def test_summarize_top_k_limits_tables(tmp_path, capsys):
    trace = _write_trace(tmp_path / "a.trace.json")
    assert main(["summarize", str(trace), "--top", "1"]) == 0
    out = capsys.readouterr().out
    assert "top 1 phases by rounds" in out


def test_summarize_missing_file_exits_two(tmp_path, capsys):
    assert main(["summarize", str(tmp_path / "nope.json")]) == 2
    assert "not found" in capsys.readouterr().err


def test_diff_identical_traces_exits_zero(tmp_path, capsys):
    a = _write_trace(tmp_path / "a.trace.json")
    b = _write_trace(tmp_path / "b.trace.json")
    assert main(["diff", str(a), str(b)]) == 0
    assert "zero drift" in capsys.readouterr().out


def test_diff_drift_exits_three_and_names_the_phase(tmp_path, capsys):
    a = _write_trace(tmp_path / "a.trace.json", rounds=3)
    b = _write_trace(tmp_path / "b.trace.json", rounds=4)
    assert main(["diff", str(a), str(b)]) == 3
    out = capsys.readouterr().out
    assert "[main] wave: rounds 3 -> 4" in out


def test_diff_missing_file_exits_two(tmp_path, capsys):
    a = _write_trace(tmp_path / "a.trace.json")
    assert main(["diff", str(a), str(tmp_path / "nope.json")]) == 2
    assert "not found" in capsys.readouterr().err


def test_module_entry_point_runs_as_subprocess(tmp_path):
    import repro

    trace = _write_trace(tmp_path / "a.trace.json")
    env = dict(os.environ)
    env["PYTHONPATH"] = str(Path(repro.__file__).parents[1])
    proc = subprocess.run(
        [sys.executable, "-m", "repro.obs", "summarize", str(trace)],
        capture_output=True, text=True, env=env,
    )
    assert proc.returncode == 0
    assert "stream main" in proc.stdout
