"""EngineProfile coverage and parity across the three engine cores.

All three engines fill the same :class:`~repro.congest.ledger.EngineProfile`
fields (ticks / peak_in_flight / activations / idle_ticks); under a
synchronous (delay-0) schedule the async engine's profile must equal the
scalar engine's, and the array engine's must equal it always — the
profile is part of the bit-for-bit parity surface, not just the ledger.
"""

import pytest

from repro import PASession
from repro.core import SUM
from repro.core.pa import PASolver
from repro.graphs import bfs_ball_partition, grid_2d

ENGINES = [
    ("scalar", {"engine_impl": "scalar"}),
    ("array", {"engine_impl": "array"}),
    ("async", {"async_mode": True}),
]


@pytest.fixture(scope="module")
def workload():
    net = grid_2d(6, 6)
    partition = bfs_ball_partition(net, target_size=9, seed=3)
    values = [(v * 5 + 1) % 31 for v in range(net.n)]
    return net, partition, values


def _profiled_phases(workload, profile=True, **kwargs):
    net, partition, values = workload
    solver = PASolver(net, seed=7, profile=profile, **kwargs)
    setup = solver.prepare(partition)
    res = solver.solve(setup, values, SUM)
    res.ledger.merge(solver.tree_ledger, prefix="tree:")
    return res, [(p.name, p.profile) for p in res.ledger.phases()]


@pytest.mark.parametrize("label,kwargs", ENGINES, ids=[e[0] for e in ENGINES])
def test_profile_attached_to_every_engine_phase(workload, label, kwargs):
    res, phases = _profiled_phases(workload, **kwargs)
    assert phases, "no phases charged"
    for name, profile in phases:
        assert profile is not None, f"phase {name} has no profile"
        assert profile.ticks >= 0
        assert profile.activations >= 0
    # zero-tick structural phases carry all-zero profiles; the engine-run
    # phases must show real activity
    assert any(p.activations > 0 for _, p in phases)


@pytest.mark.parametrize("label,kwargs", ENGINES, ids=[e[0] for e in ENGINES])
def test_profile_off_by_default(workload, label, kwargs):
    res, phases = _profiled_phases(workload, profile=False, **kwargs)
    assert all(profile is None for _, profile in phases)


def test_profiles_identical_across_engines(workload):
    """Scalar, array and delay-0 async produce the same profiles."""
    results = {
        label: _profiled_phases(workload, **kwargs)
        for label, kwargs in ENGINES
    }
    scalar_res, scalar_phases = results["scalar"]
    for label in ("array", "async"):
        res, phases = results[label]
        assert (res.rounds, res.messages) == (
            scalar_res.rounds, scalar_res.messages,
        )
        assert phases == scalar_phases, f"{label} profile diverges from scalar"


def test_profile_never_perturbs_the_ledger(workload):
    """Profiling is observational: same phase log with it on or off."""

    def log(profile):
        res, _ = _profiled_phases(workload, profile=profile)
        return [
            (p.name, p.rounds, p.messages, p.ticks, p.bits)
            for p in res.ledger.phases()
        ]

    assert log(True) == log(False)


def test_session_plumbs_profile_to_its_solver(workload):
    net, partition, values = workload
    session = PASession(net, seed=7, profile=True)
    setup = session.prepare(partition)
    res = session.solve(setup, values, SUM)
    assert session.solver.engine.profile is True
    assert any(p.profile is not None for p in res.ledger.phases())

    plain = PASession(net, seed=7)
    assert plain.solver.engine.profile is False
