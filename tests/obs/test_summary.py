"""Trace profiling: summarize, top-k, render, and the per-phase diff."""

from repro.congest import PhaseStats
from repro.obs import (
    PhaseTotals,
    Tracer,
    diff_summaries,
    render_diff,
    render_summary,
    summarize,
    top_phases,
    top_wall,
)


def _clock():
    t = [0.0]

    def tick():
        t[0] += 0.001
        return t[0]

    return tick


def _sample_tracer():
    tracer = Tracer(clock=_clock())
    tracer.ledger("main", PhaseStats("wave", rounds=3, messages=10, ticks=4, bits=80))
    tracer.ledger("main", PhaseStats("wave", rounds=2, messages=5, ticks=2, bits=40))
    tracer.ledger("main", PhaseStats("bfs", rounds=7, messages=100, ticks=7))
    tracer.ledger("async_overhead", PhaseStats("sync:wave", rounds=12, messages=60))
    start = tracer.now_us()
    tracer.complete(
        "wave", "engine.phase", start,
        {"impl": "async", "time_units": 12, "pulses": 4,
         "payload_messages": 15, "ack_messages": 15, "safe_messages": 30},
    )
    tracer.complete("bfs", "engine.phase", tracer.now_us(), {"impl": "scalar"})
    tracer.instant("fast_forward", "engine.ff", {"skipped": 9})
    tracer.instant("fast_forward", "engine.ff", {"skipped": 2})
    tracer.instant("crash", "fault", {"node": 3})
    tracer.counter("wave", {"tick": 0, "messages": 4})
    return tracer


def test_summarize_aggregates_ledger_events_per_stream_and_phase():
    summary = summarize(_sample_tracer().events)
    assert summary.stream_totals == {
        "main": (12, 115),
        "async_overhead": (12, 60),
    }
    assert summary.main_totals == (12, 115)
    wave = summary.phases[("main", "wave")]
    assert (wave.count, wave.rounds, wave.messages, wave.ticks, wave.bits) == (
        2, 5, 15, 6, 120,
    )
    assert summary.phases[("async_overhead", "sync:wave")].rounds == 12


def test_summarize_collects_wall_async_and_event_counts():
    summary = summarize(_sample_tracer().events)
    assert set(summary.wall_us) == {"wave", "bfs"}
    assert summary.wall_us["wave"] > 0
    assert summary.async_time_units == 12
    assert summary.async_pulses == 4
    assert summary.async_payloads == 15
    assert summary.async_acks == 15
    assert summary.async_safes == 30
    # counters and ledger events are not instant events; spans neither
    assert summary.event_counts == {"fast_forward": 2, "crash": 1}


def test_top_phases_orders_by_column_then_name():
    summary = summarize(_sample_tracer().events)
    by_rounds = top_phases(summary, "rounds", 5)
    assert [name for name, _ in by_rounds] == ["bfs", "wave"]
    by_messages = top_phases(summary, "messages", 1)
    assert [name for name, _ in by_messages] == ["bfs"]
    # the stream filter keeps overhead phases out of the main table
    assert all(
        name != "sync:wave" for name, _ in top_phases(summary, "rounds", 5)
    )
    overhead = top_phases(summary, "rounds", 5, stream="async_overhead")
    assert [name for name, _ in overhead] == ["sync:wave"]


def test_top_wall_orders_by_duration():
    summary = summarize(_sample_tracer().events)
    rows = top_wall(summary, 5)
    assert [name for name, _ in rows] == sorted(
        summary.wall_us, key=lambda n: (-summary.wall_us[n], n)
    )


def test_render_summary_mentions_all_sections():
    text = render_summary(summarize(_sample_tracer().events), top=5)
    assert "stream main: rounds=12 messages=115" in text
    assert "stream async_overhead: rounds=12 messages=60" in text
    assert "top 5 phases by rounds" in text
    assert "wall time" in text
    assert "sync-vs-async overhead" in text
    assert "control/payload" in text
    assert "fast_forward: 2" in text


def test_render_summary_empty_trace():
    assert "no ledger events" in render_summary(summarize([]))


def test_diff_identical_traces_is_zero_drift():
    a = summarize(_sample_tracer().events)
    b = summarize(_sample_tracer().events)
    assert diff_summaries(a, b) == []
    assert "zero drift" in render_diff([])


def test_diff_ignores_wall_time():
    slow = Tracer(clock=_clock())
    fast = Tracer(clock=_clock())
    for tracer, reps in ((slow, 5), (fast, 1)):
        start = tracer.now_us()
        for _ in range(reps):
            tracer.now_us()  # stretch this span's wall duration only
        tracer.ledger("main", PhaseStats("wave", rounds=3, messages=10))
        tracer.complete("wave", "engine.phase", start, {"impl": "scalar"})
    a, b = summarize(slow.events), summarize(fast.events)
    assert a.wall_us != b.wall_us
    assert diff_summaries(a, b) == []


def test_diff_reports_changed_and_missing_phases():
    a = Tracer()
    a.ledger("main", PhaseStats("wave", rounds=3, messages=10))
    a.ledger("main", PhaseStats("bfs", rounds=7, messages=100))
    b = Tracer()
    b.ledger("main", PhaseStats("wave", rounds=4, messages=10))

    drift = diff_summaries(summarize(a.events), summarize(b.events))
    assert [(stream, name) for stream, name, _, _ in drift] == [
        ("main", "bfs"),
        ("main", "wave"),
    ]
    # the missing phase compares against all zeros
    bfs = drift[0]
    assert bfs[3] == PhaseTotals().key_tuple()

    text = render_diff(drift, label_a="before", label_b="after")
    assert "2 phase(s) drifted (before -> after)" in text
    assert "[main] wave: rounds 3 -> 4" in text
