"""Tracer API: event shapes, scoping, exporters, the disabled default."""

import json

import pytest

from repro.congest import PhaseStats
from repro.obs import (
    NULL_TRACER,
    NullTracer,
    Tracer,
    current_tracer,
    install_tracer,
    load_trace,
    use_tracer,
)


class FakeClock:
    """Deterministic injectable clock: advances 1 ms per reading."""

    def __init__(self):
        self.t = 0.0

    def __call__(self):
        self.t += 0.001
        return self.t


def test_default_is_the_disabled_null_tracer():
    tracer = current_tracer()
    assert tracer is NULL_TRACER
    assert tracer.enabled is False


def test_null_tracer_methods_are_no_ops():
    tracer = NullTracer()
    assert tracer.now_us() == 0
    tracer.instant("x", "fault")
    tracer.counter("x", {"messages": 1})
    tracer.complete("x", "engine.phase", 0)
    tracer.ledger("main", PhaseStats("p", rounds=1, messages=2))
    with tracer.span("x", "session") as args:
        args["k"] = 1  # the yielded dict is writable but goes nowhere
    # no events attribute, nothing recorded anywhere
    assert not hasattr(tracer, "events")


def test_use_tracer_scopes_and_restores():
    tracer = Tracer()
    assert current_tracer() is NULL_TRACER
    with use_tracer(tracer) as active:
        assert active is tracer
        assert current_tracer() is tracer
    assert current_tracer() is NULL_TRACER


def test_use_tracer_restores_on_exception():
    tracer = Tracer()
    with pytest.raises(RuntimeError):
        with use_tracer(tracer):
            raise RuntimeError("boom")
    assert current_tracer() is NULL_TRACER


def test_use_tracer_nests():
    outer, inner = Tracer(), Tracer()
    with use_tracer(outer):
        with use_tracer(inner):
            assert current_tracer() is inner
        assert current_tracer() is outer
    assert current_tracer() is NULL_TRACER


def test_install_tracer_returns_previous_and_none_resets():
    tracer = Tracer()
    previous = install_tracer(tracer)
    try:
        assert previous is NULL_TRACER
        assert current_tracer() is tracer
    finally:
        assert install_tracer(None) is tracer
    assert current_tracer() is NULL_TRACER


def test_instant_event_shape():
    tracer = Tracer(clock=FakeClock())
    tracer.instant("fast_forward", "engine.ff", {"skipped": 5})
    (event,) = tracer.events
    assert event["ph"] == "i"
    assert event["name"] == "fast_forward"
    assert event["cat"] == "engine.ff"
    assert event["args"] == {"skipped": 5}
    assert event["ts"] == 1000  # one 1 ms clock step after construction


def test_counter_event_shape():
    tracer = Tracer(clock=FakeClock())
    tracer.counter("phase", {"tick": 3, "messages": 7})
    (event,) = tracer.events
    assert event["ph"] == "C"
    assert event["cat"] == "engine.tick"
    assert event["args"] == {"tick": 3, "messages": 7}


def test_complete_event_duration_from_injected_clock():
    tracer = Tracer(clock=FakeClock())
    start = tracer.now_us()  # t = 1 ms
    tracer.complete("phase", "engine.phase", start, {"impl": "scalar"})
    (event,) = tracer.events
    assert event["ph"] == "X"
    assert event["ts"] == start
    assert event["dur"] == 1000  # exactly one more clock step
    assert event["args"] == {"impl": "scalar"}


def test_span_attaches_mutations_made_inside_the_block():
    tracer = Tracer(clock=FakeClock())
    with tracer.span("session.prepare", "session", {"outcome": "full"}) as args:
        args["rounds"] = 12
    (event,) = tracer.events
    assert event["ph"] == "X"
    assert event["args"] == {"outcome": "full", "rounds": 12}


def test_span_emits_even_when_the_body_raises():
    tracer = Tracer(clock=FakeClock())
    with pytest.raises(ValueError):
        with tracer.span("attempt", "recovery"):
            raise ValueError
    assert [e["name"] for e in tracer.events] == ["attempt"]


def test_ledger_event_carries_all_deterministic_quantities():
    tracer = Tracer(clock=FakeClock())
    tracer.ledger("main", PhaseStats("wave", rounds=3, messages=10, ticks=4, bits=80))
    (event,) = tracer.events
    assert event["cat"] == "ledger"
    assert event["name"] == "wave"
    assert event["args"] == {
        "stream": "main",
        "rounds": 3,
        "messages": 10,
        "ticks": 4,
        "bits": 80,
    }


def test_ledger_events_selector_filters_by_stream():
    tracer = Tracer()
    tracer.ledger("main", PhaseStats("a", rounds=1, messages=1))
    tracer.ledger("recovery", PhaseStats("b", rounds=2, messages=2))
    tracer.instant("not_a_ledger_event", "fault")
    assert [e["name"] for e in tracer.ledger_events()] == ["a", "b"]
    assert [e["name"] for e in tracer.ledger_events("main")] == ["a"]
    assert [e["name"] for e in tracer.ledger_events("recovery")] == ["b"]


def test_chrome_export_round_trips_through_load_trace(tmp_path):
    tracer = Tracer(clock=FakeClock())
    tracer.ledger("main", PhaseStats("wave", rounds=3, messages=10))
    tracer.instant("crash", "fault", {"node": 4})
    path = tmp_path / "run.trace.json"
    tracer.write_chrome(path)

    payload = json.loads(path.read_text())
    assert payload["otherData"]["schema"] == "repro-obs/1"
    assert load_trace(path) == tracer.events


def test_jsonl_export_round_trips_through_load_trace(tmp_path):
    tracer = Tracer(clock=FakeClock())
    tracer.counter("phase", {"tick": 0, "messages": 2})
    tracer.ledger("async_overhead", PhaseStats("sync", rounds=9, messages=40))
    path = tmp_path / "run.jsonl"
    tracer.write_jsonl(path)
    assert load_trace(path) == tracer.events


def test_load_trace_rejects_json_without_trace_events(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text("{\"events\": []}")
    with pytest.raises(ValueError):
        load_trace(path)
