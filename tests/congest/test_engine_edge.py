"""Engine edge cases: capacity boundaries, strict-bits parity, timers."""

from __future__ import annotations

import pytest

from repro.congest import (
    BandwidthExceededError,
    BulkProgram,
    ChannelCapacityError,
    Engine,
    EngineProfile,
    FunctionProgram,
    Network,
    Program,
    RoundLimitExceededError,
    payload_bits,
    payload_bits_cached,
)
from repro.graphs import path_graph, star_graph


# ----------------------------------------------------------------------
# Capacity: exactly at the boundary vs one over
# ----------------------------------------------------------------------
def _flood_program(count: int) -> FunctionProgram:
    def start(ctx):
        for i in range(count):
            ctx.send(0, 1, ("m", i))

    return FunctionProgram("flood", start, lambda ctx, n, i: None)


@pytest.mark.parametrize("capacity", [1, 2, 3, 5])
def test_capacity_exact_boundary_passes(path10, capacity):
    engine = Engine(path10)
    stats = engine.run(_flood_program(capacity), max_ticks=3, capacity=capacity)
    assert stats.messages == capacity


@pytest.mark.parametrize("capacity", [1, 2, 3, 5])
def test_capacity_one_over_boundary_raises(path10, capacity):
    engine = Engine(path10)
    with pytest.raises(ChannelCapacityError):
        engine.run(_flood_program(capacity + 1), max_ticks=3, capacity=capacity)


def test_send_from_out_of_range_node_raises(path10):
    from repro.congest import NotAnEdgeError

    for src in (-1, 10, 99):
        def start(ctx, src=src):
            ctx.send(src, 1, ("x",))

        program = FunctionProgram("ghost", start, lambda c, n, i: None)
        with pytest.raises(NotAnEdgeError):
            Engine(path10).run(program, max_ticks=3)


def test_capacity_is_per_directed_edge(path10):
    # capacity messages in each direction of one edge is legal.
    def start(ctx):
        ctx.send(0, 1, ("a",))
        ctx.send(1, 0, ("b",))

    program = FunctionProgram("duplex", start, lambda ctx, n, i: None)
    stats = Engine(path10).run(program, max_ticks=3, capacity=1)
    assert stats.messages == 2


def test_capacity_overflow_detected_after_legal_edges():
    # The overflowing edge is found even when other nodes' mail is fine.
    net = star_graph(5)

    def start(ctx):
        for leaf in (1, 2, 3):
            ctx.send(leaf, 0, ("ok", leaf))
        ctx.send(4, 0, ("x", 1))
        ctx.send(4, 0, ("x", 2))  # second message on directed edge (4, 0)

    program = FunctionProgram("over", start, lambda ctx, n, i: None)
    with pytest.raises(ChannelCapacityError):
        Engine(net).run(program, max_ticks=3, capacity=1)


# ----------------------------------------------------------------------
# strict_bits: off vs on parity
# ----------------------------------------------------------------------
class PingPong(Program):
    name = "pingpong"

    def __init__(self, hops: int) -> None:
        self.hops = hops

    def on_start(self, ctx):
        ctx.send(0, 1, ("tok", 0))

    def on_node(self, ctx, node, inbox):
        for sender, payload in inbox:
            count = payload[1]
            if count < self.hops:
                ctx.send(node, sender, ("tok", count + 1))


def test_strict_bits_off_charges_identical_ledger(path10):
    strict = Engine(path10, strict_bits=True).run(PingPong(7), max_ticks=20)
    loose = Engine(path10, strict_bits=False).run(PingPong(7), max_ticks=20)
    assert (strict.rounds, strict.messages, strict.ticks) == (
        loose.rounds, loose.messages, loose.ticks,
    )


def test_strict_bits_only_strict_mode_raises(path10):
    huge = tuple(range(200))

    def start(ctx):
        ctx.send(0, 1, huge)

    received = []
    program = FunctionProgram(
        "huge", start, lambda ctx, n, inbox: received.extend(inbox)
    )
    with pytest.raises(BandwidthExceededError):
        Engine(path10, strict_bits=True).run(program, max_ticks=3)
    stats = Engine(path10, strict_bits=False).run(program, max_ticks=3)
    assert stats.messages == 1 and len(received) == 1


# ----------------------------------------------------------------------
# payload_bits_cached is exact (type-aware), not merely equality-based
# ----------------------------------------------------------------------
def test_payload_bits_cached_matches_exact_for_equal_but_distinct_types():
    # 1 == 1.0 == True, yet their encodings differ; the cache must not
    # conflate them.
    for payload in (1, 1.0, True, "1", (1,), (1.0,), (True, "1"), None):
        assert payload_bits_cached(payload) == payload_bits(payload)
    # Repeated queries (cache hits) stay exact.
    assert payload_bits_cached((1,)) == payload_bits((1,))
    assert payload_bits_cached((1.0,)) == payload_bits((1.0,))
    assert payload_bits_cached((1.0,)) != payload_bits_cached((1,))


def test_payload_bits_cached_rejects_unsupported_types():
    with pytest.raises(TypeError):
        payload_bits_cached([1, 2])
    with pytest.raises(TypeError):
        payload_bits_cached({"a": 1})


def test_numpy_scalars_charge_the_wrapped_python_value():
    # The wire format does not care about the sender's register type:
    # np.int64(1), 1 and True all cost 1 bit, at every boundary width.
    import numpy as np

    assert (
        payload_bits(np.int64(1)) == payload_bits(1) == payload_bits(True) == 1
    )
    for value in (0, 1, -1, 2**31, 2**53 - 1, 2**53, 2**60 - 1, -(2**62)):
        assert (
            payload_bits_cached(np.int64(value))
            == payload_bits_cached(value)
            == payload_bits(value)
        )
    assert payload_bits_cached(np.float64(1.5)) == payload_bits(1.5) == 64
    assert payload_bits_cached(np.bool_(True)) == 1
    # np.float64 subclasses float, so it takes the repr-keyed cache path;
    # its numpy-2 repr must key separately from the plain float without
    # changing the answer.
    assert payload_bits_cached(1.0) == payload_bits_cached(np.float64(1.0)) == 64
    # Numpy scalars nested inside (cacheable) tuples charge like the
    # plain-int tuple, again via a type-faithful key.
    assert payload_bits_cached((np.int64(5), "tag")) == payload_bits((5, "tag"))
    with pytest.raises(TypeError):
        payload_bits(np.arange(3))  # whole arrays are never a message


def test_strict_bits_ledger_identical_for_numpy_and_python_payloads(path10):
    import numpy as np

    def send_np(ctx):
        ctx.send(0, 1, ("tok", np.int64(7)))

    def send_py(ctx):
        ctx.send(0, 1, ("tok", 7))

    silent = lambda ctx, n, inbox: None
    a = Engine(path10, strict_bits=True).run(
        FunctionProgram("np", send_np, silent), max_ticks=3
    )
    b = Engine(path10, strict_bits=True).run(
        FunctionProgram("py", send_py, silent), max_ticks=3
    )
    assert (a.rounds, a.messages) == (b.rounds, b.messages)


# ----------------------------------------------------------------------
# Deterministic activation order
# ----------------------------------------------------------------------
def test_activation_order_is_sorted_even_for_unsorted_wakes_and_sends():
    net = star_graph(6)
    order = []

    def start(ctx):
        for leaf in (5, 2, 4):
            ctx.send(leaf, 0, ("hi", leaf))
        ctx.wake(3)
        ctx.wake(1)

    def on_node(ctx, node, inbox):
        order.append(node)

    # Wait: the sends activate node 0 (the hub); wakes activate 1 and 3.
    Engine(net).run(FunctionProgram("order", start, on_node), max_ticks=3)
    assert order == sorted(order)
    assert order == [0, 1, 3]


def test_inbox_sender_order_after_out_of_order_sends():
    net = star_graph(5)
    seen = []

    def start(ctx):
        for leaf in (3, 1, 4, 2):
            ctx.send(leaf, 0, ("hi", leaf))

    def on_node(ctx, node, inbox):
        seen.extend(sender for sender, _payload in inbox)

    Engine(net).run(FunctionProgram("sorted", start, on_node), max_ticks=3)
    assert seen == [1, 2, 3, 4]


# ----------------------------------------------------------------------
# Timer wheel: wake_at
# ----------------------------------------------------------------------
def test_wake_at_delivers_at_exact_tick(path10):
    activations = []

    def start(ctx):
        ctx.wake_at(4, 7)

    def on_node(ctx, node, inbox):
        activations.append((ctx.tick, node, len(inbox)))

    stats = Engine(path10).run(FunctionProgram("timer", start, on_node),
                               max_ticks=20)
    assert activations == [(7, 4, 0)]
    # The idle ticks before the timer fires are still charged as rounds.
    assert stats.ticks == 7
    assert stats.rounds == 7


def test_wake_at_multiple_timers_fire_in_tick_order(path10):
    activations = []

    def start(ctx):
        ctx.wake_at(2, 5)
        ctx.wake_at(1, 3)
        ctx.wake_at(3, 5)

    def on_node(ctx, node, inbox):
        activations.append((ctx.tick, node))

    stats = Engine(path10).run(FunctionProgram("timers", start, on_node),
                               max_ticks=10)
    assert activations == [(3, 1), (5, 2), (5, 3)]
    assert stats.ticks == 5


def test_wake_at_interleaves_with_messages(path10):
    log = []

    class Prog(Program):
        name = "mix"

        def on_start(self, ctx):
            ctx.send(0, 1, ("m",))
            ctx.wake_at(5, 4)

        def on_node(self, ctx, node, inbox):
            log.append((ctx.tick, node))

    stats = Engine(path10).run(Prog(), max_ticks=10)
    assert log == [(1, 1), (4, 5)]
    assert stats.ticks == 4


def test_wake_at_rearming_from_a_timer_activation(path10):
    ticks_seen = []

    class Rearm(Program):
        name = "rearm"

        def on_start(self, ctx):
            ctx.wake_at(0, 2)

        def on_node(self, ctx, node, inbox):
            ticks_seen.append(ctx.tick)
            if ctx.tick < 8:
                ctx.wake_at(node, ctx.tick + 3)

    stats = Engine(path10).run(Rearm(), max_ticks=20)
    assert ticks_seen == [2, 5, 8]
    assert stats.ticks == 8


def test_wake_at_requires_future_tick(path10):
    def start(ctx):
        ctx.wake_at(0, 0)

    with pytest.raises(ValueError):
        Engine(path10).run(FunctionProgram("bad", start, lambda c, n, i: None),
                           max_ticks=3)


def test_wake_at_beyond_max_ticks_raises(path10):
    def start(ctx):
        ctx.wake_at(0, 50)

    with pytest.raises(RoundLimitExceededError):
        Engine(path10).run(FunctionProgram("far", start, lambda c, n, i: None),
                           max_ticks=10)


def test_wake_at_exactly_max_ticks_is_allowed(path10):
    # The fast-forward may land exactly on the budget boundary: tick
    # max_ticks is still within the budget.
    fired = []

    def start(ctx):
        ctx.wake_at(2, 10)

    stats = Engine(path10).run(
        FunctionProgram("edge", start, lambda c, n, i: fired.append(c.tick)),
        max_ticks=10,
    )
    assert fired == [10]
    assert stats.ticks == 10


def test_wake_at_one_past_max_ticks_raises(path10):
    def start(ctx):
        ctx.wake_at(2, 11)

    with pytest.raises(RoundLimitExceededError):
        Engine(path10).run(
            FunctionProgram("over", start, lambda c, n, i: None), max_ticks=10
        )


def test_fast_forward_from_rearm_cannot_overshoot_max_ticks(path10):
    # A timer armed mid-run that fast-forwards past the budget must raise,
    # not silently run the overshooting tick.
    ticks_seen = []

    class Rearm(Program):
        name = "rearm_overshoot"

        def on_start(self, ctx):
            ctx.wake_at(0, 5)

        def on_node(self, ctx, node, inbox):
            ticks_seen.append(ctx.tick)
            ctx.wake_at(node, ctx.tick + 95)

    with pytest.raises(RoundLimitExceededError):
        Engine(path10).run(Rearm(), max_ticks=20)
    assert ticks_seen == [5]  # the overshooting activation never ran


# ----------------------------------------------------------------------
# send_batch: generator safety of the invalid-source error path
# ----------------------------------------------------------------------
def test_send_batch_invalid_src_does_not_consume_entries(path10):
    from repro.congest import Context, NotAnEdgeError

    consumed = []

    def entries():
        for dst in (1, 2):
            consumed.append(dst)
            yield (dst, ("x",))

    gen = entries()
    ctx = Context(path10, strict_bits=True)
    with pytest.raises(NotAnEdgeError) as info:
        ctx.send_batch(99, gen)
    assert consumed == []          # the generator was not touched
    assert info.value.src == 99
    assert info.value.dst is None
    # The untouched generator is still usable by the caller afterwards.
    assert [dst for dst, _payload in gen] == [1, 2]
    assert consumed == [1, 2]


def test_send_batch_invalid_src_with_empty_generator(path10):
    from repro.congest import Context, NotAnEdgeError

    ctx = Context(path10, strict_bits=False)
    with pytest.raises(NotAnEdgeError):
        ctx.send_batch(-3, iter(()))


def test_send_batch_valid_src_accepts_generators(path10):
    from repro.congest import Context

    ctx = Context(path10, strict_bits=True)
    ctx.send_batch(1, ((dst, ("m", dst)) for dst in (0, 2)))
    assert ctx._sent == 2


# ----------------------------------------------------------------------
# BulkProgram and FastContext: dispatch variants are ledger-identical
# ----------------------------------------------------------------------
class _EchoRing(Program):
    """Token circles a path: every node forwards to the other neighbor."""

    name = "echo"

    def __init__(self, hops: int) -> None:
        self.hops = hops
        self.trace = []

    def on_start(self, ctx):
        ctx.send(0, 1, ("t", 0))

    def on_node(self, ctx, node, inbox):
        self.trace.append((ctx.tick, node))
        for sender, (tag, count) in inbox:
            if count < self.hops:
                nxt = node + 1 if sender < node else node - 1
                if 0 <= nxt < ctx.network.n:
                    ctx.send(node, nxt, (tag, count + 1))


class _BulkEchoRing(_EchoRing, BulkProgram):
    """Same program dispatched through on_bulk (default loop)."""

    name = "echo_bulk"


def test_bulk_program_matches_sequential_program(path10):
    seq = _EchoRing(7)
    bulk = _BulkEchoRing(7)
    a = Engine(path10).run(seq, max_ticks=20)
    b = Engine(path10).run(bulk, max_ticks=20)
    assert (a.rounds, a.messages, a.ticks) == (b.rounds, b.messages, b.ticks)
    assert seq.trace == bulk.trace


def test_fast_context_ledger_parity(path10):
    strict = Engine(path10).run(_EchoRing(7), max_ticks=20)
    fast_prog = _EchoRing(7)
    fast = Engine(path10, strict_bits=False, strict_edges=False).run(
        fast_prog, max_ticks=20
    )
    assert (strict.rounds, strict.messages, strict.ticks) == (
        fast.rounds, fast.messages, fast.ticks,
    )


def test_fast_context_selected_only_when_both_audits_off(path10):
    from repro.congest import FastContext
    from repro.congest.engine import Context as StrictContext

    seen = {}

    def start(ctx):
        seen["cls"] = type(ctx)

    prog = FunctionProgram("probe", start, lambda c, n, i: None)
    Engine(path10, strict_bits=False, strict_edges=False).run(prog, max_ticks=2)
    assert seen["cls"] is FastContext
    Engine(path10, strict_bits=False, strict_edges=True).run(prog, max_ticks=2)
    assert seen["cls"] is StrictContext
    # The audits come off together: dropping only the edge audit would
    # silently keep it (Context has no strict_edges branch), so the
    # combination is rejected outright.
    with pytest.raises(ValueError):
        Engine(path10, strict_bits=True, strict_edges=False)


def test_engine_arena_reuse_across_phases_is_clean(path10):
    engine = Engine(path10)
    a = engine.run(PingPong(5), max_ticks=20)
    b = engine.run(PingPong(5), max_ticks=20)
    assert (a.rounds, a.messages) == (b.rounds, b.messages)
    # An aborted phase must not poison the next one.
    with pytest.raises(RoundLimitExceededError):
        engine.run(PingPong(50), max_ticks=3)
    c = engine.run(PingPong(5), max_ticks=20)
    assert (c.rounds, c.messages) == (a.rounds, a.messages)


def test_pa_pipeline_parity_between_strict_and_fast_engines():
    from repro.core import SUM, PASolver
    from repro.graphs import random_connected_partition, random_regular_ish

    net = random_regular_ish(60, 4, seed=11)
    part = random_connected_partition(net, 6, seed=12)

    def pipeline(**engine_flags):
        solver = PASolver(net, seed=13, **engine_flags)
        setup = solver.prepare(part)
        result = solver.solve(setup, [1] * net.n, SUM)
        return result.rounds, result.messages, dict(result.aggregates)

    strict = pipeline()
    loose = pipeline(strict_bits=False, strict_edges=False)
    assert strict == loose


# ----------------------------------------------------------------------
# Opt-in profile
# ----------------------------------------------------------------------
def test_profile_off_by_default(path10):
    stats = Engine(path10).run(PingPong(3), max_ticks=10)
    assert stats.profile is None


def test_profile_collects_engine_quantities(path10):
    stats = Engine(path10, profile=True).run(PingPong(3), max_ticks=10)
    prof = stats.profile
    assert isinstance(prof, EngineProfile)
    assert prof.ticks == stats.ticks == 4
    assert prof.peak_in_flight == 1
    assert prof.activations == 4
    assert prof.idle_ticks == 0


def test_profile_counts_idle_ticks_under_timer_wheel(path10):
    def start(ctx):
        ctx.wake_at(0, 9)

    stats = Engine(path10, profile=True).run(
        FunctionProgram("idle", start, lambda c, n, i: None), max_ticks=20
    )
    assert stats.rounds == 9
    assert stats.profile.idle_ticks == 8
    assert stats.profile.ticks == 1  # only the firing tick did work


def test_profile_merges_across_phase_addition(path10):
    engine = Engine(path10, profile=True)
    a = engine.run(PingPong(3), max_ticks=10)
    b = engine.run(PingPong(5), max_ticks=10)
    merged = a + b
    assert merged.profile.activations == (
        a.profile.activations + b.profile.activations
    )
    assert merged.profile.peak_in_flight == max(
        a.profile.peak_in_flight, b.profile.peak_in_flight
    )
