"""Engine semantics: delivery, capacity, bandwidth, wakeups, determinism."""

from __future__ import annotations

import pytest

from repro.congest import (
    BandwidthExceededError,
    ChannelCapacityError,
    Context,
    Engine,
    FunctionProgram,
    Network,
    NotAnEdgeError,
    Program,
    RoundLimitExceededError,
)
from repro.graphs import path_graph, star_graph


class EchoOnce(Program):
    """Node 0 pings node 1; node 1 echoes back once."""

    name = "echo"

    def __init__(self) -> None:
        self.log = []

    def on_start(self, ctx: Context) -> None:
        ctx.send(0, 1, ("ping",))

    def on_node(self, ctx: Context, node: int, inbox) -> None:
        for sender, payload in inbox:
            self.log.append((ctx.tick, node, sender, payload[0]))
            if payload[0] == "ping":
                ctx.send(node, sender, ("pong",))


def test_messages_delivered_next_tick(path10):
    engine = Engine(path10)
    program = EchoOnce()
    stats = engine.run(program, max_ticks=5)
    assert program.log == [(1, 1, 0, "ping"), (2, 0, 1, "pong")]
    assert stats.rounds == 2
    assert stats.messages == 2


def test_send_to_non_neighbor_rejected(path10):
    engine = Engine(path10)

    def start(ctx):
        ctx.send(0, 5, ("bad",))

    program = FunctionProgram("bad", start, lambda ctx, n, i: None)
    with pytest.raises(NotAnEdgeError):
        engine.run(program, max_ticks=3)


def test_channel_capacity_enforced(path10):
    engine = Engine(path10)

    def start(ctx):
        ctx.send(0, 1, ("a",))
        ctx.send(0, 1, ("b",))

    program = FunctionProgram("flood", start, lambda ctx, n, i: None)
    with pytest.raises(ChannelCapacityError):
        engine.run(program, max_ticks=3)


def test_higher_capacity_allows_parallel_messages(path10):
    engine = Engine(path10)
    seen = []

    def start(ctx):
        ctx.send(0, 1, ("a",))
        ctx.send(0, 1, ("b",))

    def on_node(ctx, node, inbox):
        seen.extend(payload[0] for _s, payload in inbox)

    program = FunctionProgram("flood", start, on_node)
    stats = engine.run(program, max_ticks=3, capacity=2, rounds_per_tick=2)
    assert sorted(seen) == ["a", "b"]
    assert stats.rounds == 2  # one tick at two rounds per tick
    assert stats.messages == 2


def test_bandwidth_cap_enforced(path10):
    engine = Engine(path10)
    huge = tuple(range(200))

    def start(ctx):
        ctx.send(0, 1, huge)

    program = FunctionProgram("huge", start, lambda ctx, n, i: None)
    with pytest.raises(BandwidthExceededError):
        engine.run(program, max_ticks=3)


def test_round_limit_raises(path10):
    engine = Engine(path10)

    class Forever(Program):
        name = "forever"

        def on_start(self, ctx):
            ctx.wake(0)

        def on_node(self, ctx, node, inbox):
            ctx.wake(node)

    with pytest.raises(RoundLimitExceededError):
        engine.run(Forever(), max_ticks=10)


def test_wakeups_activate_without_messages(path10):
    engine = Engine(path10)
    ticks = []

    class Waker(Program):
        name = "waker"

        def on_start(self, ctx):
            ctx.wake(3)

        def on_node(self, ctx, node, inbox):
            ticks.append((ctx.tick, node, len(inbox)))
            if ctx.tick < 3:
                ctx.wake(node)

    stats = engine.run(Waker(), max_ticks=6)
    assert ticks == [(1, 3, 0), (2, 3, 0), (3, 3, 0)]
    assert stats.messages == 0


def test_inbox_sorted_by_sender():
    net = star_graph(5)
    engine = Engine(net)
    received = []

    def start(ctx):
        for leaf in (4, 2, 3, 1):
            ctx.send(leaf, 0, ("hi", leaf))

    def on_node(ctx, node, inbox):
        received.extend(sender for sender, _p in inbox)

    program = FunctionProgram("sorted", start, on_node)
    engine.run(program, max_ticks=3)
    assert received == [1, 2, 3, 4]


def test_run_is_deterministic(small_random):
    def run_once():
        engine = Engine(small_random)
        order = []

        class Flood(Program):
            name = "flood"

            def __init__(self):
                self.seen = set()

            def on_start(self, ctx):
                self.seen.add(0)
                for nb in small_random.neighbors[0]:
                    ctx.send(0, nb, ("f",))

            def on_node(self, ctx, node, inbox):
                if node not in self.seen:
                    self.seen.add(node)
                    order.append(node)
                    for nb in small_random.neighbors[node]:
                        ctx.send(node, nb, ("f",))

        program = Flood()
        stats = engine.run(program, max_ticks=50)
        return order, stats.messages

    first = run_once()
    second = run_once()
    assert first == second


def test_phase_stats_round_scaling(path10):
    engine = Engine(path10)

    class Chain(Program):
        name = "chain"

        def on_start(self, ctx):
            ctx.send(0, 1, (0,))

        def on_node(self, ctx, node, inbox):
            for _s, payload in inbox:
                if node < 9:
                    ctx.send(node, node + 1, payload)

    stats = engine.run(Chain(), max_ticks=20, capacity=3, rounds_per_tick=3)
    assert stats.ticks == 9
    assert stats.rounds == 27
    assert stats.messages == 9
