"""Network construction, validation, uids, weights and oracles."""

import pytest

from repro.congest import Network, canonical_edge, network_from_networkx
from repro.graphs import grid_2d, path_graph


def test_basic_construction():
    net = Network([(0, 1), (1, 2)])
    assert net.n == 3
    assert net.m == 2
    assert net.neighbors[1] == (0, 2)
    assert net.degree(1) == 2
    assert net.has_edge(2, 1)
    assert not net.has_edge(0, 2)


def test_rejects_self_loops_and_duplicates():
    with pytest.raises(ValueError):
        Network([(0, 0)])
    with pytest.raises(ValueError):
        Network([(0, 1), (1, 0)])


def test_rejects_out_of_range_endpoint():
    with pytest.raises(ValueError):
        Network([(0, 5)], n=3)


def test_uids_are_unique_and_not_indices():
    net = path_graph(50)
    assert len(set(net.uid)) == net.n
    assert set(net.uid) == set(range(net.n, 2 * net.n))
    for v in range(net.n):
        assert net.node_of_uid(net.uid[v]) == v


def test_weights_validation():
    with pytest.raises(ValueError):
        Network([(0, 1)], weights={(0, 1): 0})
    with pytest.raises(ValueError):
        Network([(0, 1), (1, 2)], weights={(0, 1): 5})  # missing edge weight
    net = Network([(0, 1)], weights={(1, 0): 7})  # canonicalized
    assert net.weight(0, 1) == 7
    assert net.total_weight() == 7


def test_unweighted_weight_defaults_to_one():
    net = path_graph(3)
    assert net.weight(0, 1) == 1
    assert net.total_weight() == net.m


def test_connectivity_and_bfs():
    net = grid_2d(3, 3)
    assert net.is_connected()
    depths = net.bfs_depths(0)
    assert depths[8] == 4
    disconnected = Network([(0, 1), (2, 3)])
    assert not disconnected.is_connected()


def test_diameter_estimate_is_2_approx():
    net = grid_2d(4, 7)
    exact = net.exact_diameter()
    estimate = net.diameter_estimate()
    assert exact <= estimate <= 2 * exact


def test_network_from_networkx_roundtrip():
    import networkx as nx

    g = nx.Graph()
    g.add_nodes_from(range(4))
    g.add_edge(0, 1, weight=3)
    g.add_edge(1, 2, weight=4)
    g.add_edge(2, 3, weight=5)
    net = network_from_networkx(g)
    assert net.n == 4
    assert net.weight(1, 2) == 4


def test_canonical_edge():
    assert canonical_edge(5, 2) == (2, 5)
    assert canonical_edge(2, 5) == (2, 5)


# ----------------------------------------------------------------------
# CSR storage: the lazy views must be identical to the former eager forms
# ----------------------------------------------------------------------
def test_edges_are_canonical_and_lexicographically_sorted():
    scrambled = [(3, 1), (0, 2), (2, 1), (4, 0), (1, 0)]
    net = Network(scrambled)
    assert net.edges == tuple(sorted(canonical_edge(u, v) for u, v in scrambled))
    assert net.m == len(scrambled)


def test_neighbors_ascending_and_consistent_with_csr():
    net = grid_2d(5, 7)
    offsets, adj = net.adjacency_csr()
    assert offsets[net.n] == 2 * net.m == len(adj)
    for v in range(net.n):
        slice_ = tuple(adj[offsets[v]:offsets[v + 1]])
        assert slice_ == net.neighbors[v]
        assert list(slice_) == sorted(slice_)
        assert net.neighbor_sets[v] == frozenset(slice_)
        assert net.degree(v) == len(slice_)


def test_degrees_matches_per_node_degree():
    net = grid_2d(4, 4)
    assert net.degrees() == [net.degree(v) for v in range(net.n)]


def test_has_edge_out_of_range_nodes_is_false():
    net = path_graph(5)
    assert not net.has_edge(-1, 0)
    assert not net.has_edge(5, 0)
    assert not net.has_edge(99, 100)


def test_rejects_negative_node_ids():
    with pytest.raises(ValueError):
        Network([(-1, 2)])


def test_duplicate_detection_is_orientation_blind():
    with pytest.raises(ValueError):
        Network([(2, 7), (7, 2)], n=8)


def test_isolated_nodes_have_empty_adjacency():
    net = Network([(0, 1)], n=4)
    assert net.neighbors[2] == ()
    assert net.neighbors[3] == ()
    assert net.degree(3) == 0
    assert not net.has_edge(2, 3)


def test_uid_lazy_view_matches_eager_semantics():
    # Same seed -> same permutation regardless of when it is materialized.
    a = path_graph(64, uid_seed=123)
    b = path_graph(64, uid_seed=123)
    assert b.is_connected()  # touch other lazies first on b
    assert a.uid == b.uid
    assert a.uid != tuple(range(64, 128))  # actually shuffled
