"""Network construction, validation, uids, weights and oracles."""

import pytest

from repro.congest import Network, canonical_edge, network_from_networkx
from repro.graphs import grid_2d, path_graph


def test_basic_construction():
    net = Network([(0, 1), (1, 2)])
    assert net.n == 3
    assert net.m == 2
    assert net.neighbors[1] == (0, 2)
    assert net.degree(1) == 2
    assert net.has_edge(2, 1)
    assert not net.has_edge(0, 2)


def test_rejects_self_loops_and_duplicates():
    with pytest.raises(ValueError):
        Network([(0, 0)])
    with pytest.raises(ValueError):
        Network([(0, 1), (1, 0)])


def test_rejects_out_of_range_endpoint():
    with pytest.raises(ValueError):
        Network([(0, 5)], n=3)


def test_uids_are_unique_and_not_indices():
    net = path_graph(50)
    assert len(set(net.uid)) == net.n
    assert set(net.uid) == set(range(net.n, 2 * net.n))
    for v in range(net.n):
        assert net.node_of_uid(net.uid[v]) == v


def test_weights_validation():
    with pytest.raises(ValueError):
        Network([(0, 1)], weights={(0, 1): 0})
    with pytest.raises(ValueError):
        Network([(0, 1), (1, 2)], weights={(0, 1): 5})  # missing edge weight
    net = Network([(0, 1)], weights={(1, 0): 7})  # canonicalized
    assert net.weight(0, 1) == 7
    assert net.total_weight() == 7


def test_unweighted_weight_defaults_to_one():
    net = path_graph(3)
    assert net.weight(0, 1) == 1
    assert net.total_weight() == net.m


def test_connectivity_and_bfs():
    net = grid_2d(3, 3)
    assert net.is_connected()
    depths = net.bfs_depths(0)
    assert depths[8] == 4
    disconnected = Network([(0, 1), (2, 3)])
    assert not disconnected.is_connected()


def test_diameter_estimate_is_2_approx():
    net = grid_2d(4, 7)
    exact = net.exact_diameter()
    estimate = net.diameter_estimate()
    assert exact <= estimate <= 2 * exact


def test_network_from_networkx_roundtrip():
    import networkx as nx

    g = nx.Graph()
    g.add_nodes_from(range(4))
    g.add_edge(0, 1, weight=3)
    g.add_edge(1, 2, weight=4)
    g.add_edge(2, 3, weight=5)
    net = network_from_networkx(g)
    assert net.n == 4
    assert net.weight(1, 2) == 4


def test_canonical_edge():
    assert canonical_edge(5, 2) == (2, 5)
    assert canonical_edge(2, 5) == (2, 5)
