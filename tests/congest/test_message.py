"""Payload bit accounting and the O(log n) budget."""

import pytest

from repro.congest import int_bits, message_bit_limit, payload_bits


def test_int_bits_basics():
    assert int_bits(0) == 1
    assert int_bits(1) == 1
    assert int_bits(7) == 3
    assert int_bits(8) == 4
    assert int_bits(-8) == 5  # sign bit


def test_payload_bits_none_and_bool():
    assert payload_bits(None) == 1
    assert payload_bits(True) == 1
    assert payload_bits(False) == 1


def test_payload_bits_tuples_are_summed():
    flat = payload_bits((3, 5))
    assert flat > payload_bits(3)
    nested = payload_bits(((3,), (5,)))
    assert nested > flat  # nesting overhead charged


def test_payload_bits_strings_are_flat_tags():
    # Tags come from a fixed alphabet, so they cost constant bits.
    assert payload_bits("ku") == payload_bits("block_up_long_tag")


def test_payload_bits_rejects_unserializable():
    with pytest.raises(TypeError):
        payload_bits({"a": 1})
    with pytest.raises(TypeError):
        payload_bits([1, 2])


def test_message_bit_limit_grows_with_n():
    assert message_bit_limit(2) < message_bit_limit(1 << 20)
    # A constant number of ids always fits.
    n = 1000
    limit = message_bit_limit(n)
    assert payload_bits(("tag", n - 1, n - 1, n - 1)) <= limit


def test_message_bit_limit_small_n():
    assert message_bit_limit(1) >= 8
