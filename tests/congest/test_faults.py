"""Fault plans: pure predicates, seeded derivation, engine injection."""

import pytest

from repro.congest import (
    AsyncEngine,
    CrashEvent,
    FaultPlan,
    MessageLoss,
    PartitionEvent,
    RandomDelaySchedule,
    SynchronousSchedule,
)
from repro.congest.engine import FunctionProgram
from repro.congest.faults import FaultReport
from repro.graphs import grid_2d, path_graph


def _flood(net, engine, name="flood"):
    """Token flood from node 0; returns (stats, covered set)."""
    seen = set()

    def start(ctx):
        seen.add(0)
        for nb in net.neighbors[0]:
            ctx.send(0, nb, ("tok",))

    def step(ctx, node, inbox):
        if node in seen:
            return
        seen.add(node)
        for nb in net.neighbors[node]:
            ctx.send(node, nb, ("tok",))

    stats = engine.run(FunctionProgram(name, start, step), max_ticks=200)
    return stats, seen


# ---------------------------------------------------------------------------
# Event validation and pure predicates
# ---------------------------------------------------------------------------

def test_crash_event_validation():
    with pytest.raises(ValueError):
        CrashEvent(node=0, at=0)  # pulse 0 is on_start
    with pytest.raises(ValueError):
        CrashEvent(node=0, at=5, recover_at=5)
    ev = CrashEvent(node=0, at=5, recover_at=9)
    assert (ev.at, ev.recover_at) == (5, 9)


def test_message_loss_validation_and_window():
    with pytest.raises(ValueError):
        MessageLoss(rate=1.5)
    with pytest.raises(ValueError):
        MessageLoss(rate=0.5, start=0)
    with pytest.raises(ValueError):
        MessageLoss(rate=0.5, start=4, end=4)
    loss = MessageLoss(rate=1.0, start=5, end=9)
    assert not loss.lost(0, 1, 4)
    assert loss.lost(0, 1, 5) and loss.lost(0, 1, 8)
    assert not loss.lost(0, 1, 9)
    assert not MessageLoss(rate=0.0).lost(0, 1, 7)


def test_message_loss_is_a_pure_seeded_hash():
    loss = MessageLoss(rate=0.5, seed=3)
    coords = [(s, d, p) for s in range(6) for d in range(6) for p in range(1, 40)
              if s != d]
    first = [loss.lost(*c) for c in coords]
    assert first == [loss.lost(*c) for c in coords]
    rate = sum(first) / len(first)
    assert 0.35 < rate < 0.65  # honest coin at the configured rate
    other = [MessageLoss(rate=0.5, seed=4).lost(*c) for c in coords]
    assert other != first  # the seed matters


def test_partition_event_cut_and_window():
    part = PartitionEvent(at=3, heal_at=7, side=frozenset({0, 1}))
    assert part.down(1, 2, 3) and part.down(2, 1, 6)
    assert not part.down(0, 1, 5)  # same shore
    assert not part.down(1, 2, 2) and not part.down(1, 2, 7)
    with pytest.raises(ValueError):
        PartitionEvent(at=3, heal_at=2, side=frozenset({0}))
    with pytest.raises(ValueError):
        PartitionEvent(at=3, heal_at=9, side=frozenset())


def test_plan_alive_spans_and_clear_after():
    plan = FaultPlan(crashes=(
        CrashEvent(node=2, at=4, recover_at=10),
        CrashEvent(node=5, at=1, recover_at=3),
    ))
    assert plan.alive(2, 3) and not plan.alive(2, 4)
    assert not plan.alive(2, 9) and plan.alive(2, 10)
    assert plan.alive(0, 100)
    assert plan.crashed_nodes() == frozenset({2, 5})
    assert plan.clear_after == 10
    assert FaultPlan(crashes=(CrashEvent(node=1, at=2),)).clear_after is None
    assert FaultPlan().empty and FaultPlan().clear_after == 1


def test_seeded_plan_is_pure_and_recoverable():
    a = FaultPlan.seeded(9, 20, crashes=2, loss_rate=0.1)
    b = FaultPlan.seeded(9, 20, crashes=2, loss_rate=0.1)
    assert a == b
    assert len(a.crashes) == 2 and len(a.losses) == 1
    assert all(0 <= ev.node < 20 for ev in a.crashes)
    assert a.clear_after is not None  # recover=True + bounded loss window
    assert FaultPlan.seeded(3, 20, crashes=2) != FaultPlan.seeded(4, 20, crashes=2)
    # Never every node: a single-node network cannot lose its only node.
    assert FaultPlan.seeded(0, 1, crashes=5).crashes == ()


def test_fault_report_affected_property():
    report = FaultReport(phase="p")
    assert not report.affected
    report.dropped_payloads += 1
    assert report.affected


# ---------------------------------------------------------------------------
# Injection through the engine
# ---------------------------------------------------------------------------

def test_empty_plan_is_normalized_to_no_plan():
    net = grid_2d(3, 4)
    faulty = AsyncEngine(net, faults=FaultPlan())
    assert faulty.faults is None
    plain = AsyncEngine(net)
    stats_f, seen_f = _flood(net, faulty)
    stats_p, seen_p = _flood(net, plain)
    assert seen_f == seen_p and stats_f == stats_p
    assert faulty.fault_log == []  # no plan -> no reports, ever


def test_crashed_node_blocks_the_flood_and_is_reported():
    net = path_graph(5)
    plan = FaultPlan(crashes=(CrashEvent(node=2, at=1),))
    engine = AsyncEngine(net, faults=plan)
    _stats, seen = _flood(net, engine)
    assert seen == {0, 1}  # the crash severs the path
    report = engine.fault_log[-1]
    assert report.affected
    assert report.dropped_payloads >= 1  # 1 -> 2 payload dropped
    assert report.delivery_timeouts == report.dropped_payloads


def test_dead_pulse_timer_is_suppressed_and_counted():
    net = path_graph(2)
    plan = FaultPlan(crashes=(CrashEvent(node=1, at=4, recover_at=8),))
    engine = AsyncEngine(net, faults=plan)
    fired = []

    def start(ctx):
        ctx.wake_at(1, 5)  # a dead pulse: the timer must not fire
        ctx.wake_at(1, 9)  # after recovery: this one must

    def step(ctx, node, inbox):
        fired.append((node, ctx.tick))

    engine.run(FunctionProgram("timers", start, step), max_ticks=12)
    assert fired == [(1, 9)]
    report = engine.fault_log[-1]
    assert report.suppressed_activations >= 1
    assert report.dropped_timers >= 1


def test_recovered_node_accepts_later_deliveries():
    net = path_graph(2)
    plan = FaultPlan(crashes=(CrashEvent(node=1, at=1, recover_at=5),))
    engine = AsyncEngine(net, faults=plan)
    got = []

    def start(ctx):
        ctx.send(0, 1, ("early",))  # lands at pulse 1: dropped
        ctx.wake_at(0, 8)

    def step(ctx, node, inbox):
        if node == 0 and not inbox:
            ctx.send(0, 1, ("late",))  # lands at pulse 9: delivered
        elif node == 1:
            got.extend(payload for _src, payload in inbox)

    engine.run(FunctionProgram("retry", start, step), max_ticks=20)
    assert got == [("late",)]
    assert engine.fault_log[-1].dropped_payloads == 1


def test_total_loss_window_drops_exactly_its_pulses():
    net = path_graph(4)
    plan = FaultPlan(losses=(MessageLoss(rate=1.0, start=1, end=2),))
    engine = AsyncEngine(net, faults=plan)
    _stats, seen = _flood(net, engine)
    # Pulse-1 deliveries (the on_start sends) are all lost; the flood
    # has no retry, so it dies at the source.
    assert seen == {0}
    report = engine.fault_log[-1]
    assert report.dropped_payloads == 1  # node 0's single neighbor
    assert report.delivery_timeouts == 1


def test_partition_stalls_the_cut_but_the_phase_terminates():
    net = path_graph(4)
    plan = FaultPlan(
        partitions=(PartitionEvent(at=1, heal_at=None, side=frozenset({0, 1})),)
    )
    engine = AsyncEngine(net, faults=plan)
    _stats, seen = _flood(net, engine)
    # Node 1 borders the cut: its pulse gate waits on safe waves from
    # node 2, which the cut drops — both shores stall at the cut, so the
    # flood never leaves node 0, yet the phase still quiesces.
    assert seen == {0}
    report = engine.fault_log[-1]
    assert report.affected
    assert report.dropped_control >= 1  # safe waves are cut


def test_global_pulse_accumulates_and_locates_later_phases():
    net = path_graph(5)
    plain = AsyncEngine(net)
    first_stats, _ = _flood(net, plain)
    # Crash node 2 only during the *second* phase's global window.
    plan = FaultPlan(crashes=(
        CrashEvent(node=2, at=first_stats.ticks + 1, recover_at=None),
    ))
    engine = AsyncEngine(net, faults=plan)
    _stats, seen_one = _flood(net, engine, name="flood-1")
    assert seen_one == {0, 1, 2, 3, 4}  # phase 1 predates the crash
    assert not engine.fault_log[0].affected
    assert engine.global_pulse == first_stats.ticks
    _stats, seen_two = _flood(net, engine, name="flood-2")
    assert seen_two == {0, 1}  # same plan, same code: now it bites
    assert engine.fault_log[1].affected


def test_faults_compose_with_delayed_schedules():
    net = grid_2d(3, 4)
    plan = FaultPlan(crashes=(CrashEvent(node=5, at=1, recover_at=None),))
    for schedule in (SynchronousSchedule(), RandomDelaySchedule(seed=3, max_delay=4)):
        engine = AsyncEngine(net, schedule, faults=plan)
        _stats, seen = _flood(net, engine)
        assert 5 not in seen
        assert engine.fault_log[-1].affected
