"""Scalar-vs-vectorized differential parity: the pin for the array core.

The array engine (:mod:`repro.congest.arrays` plus the kernels in
:mod:`repro.core.array_queue` / :mod:`repro.core.array_wave`) is a pure
implementation change, never a cost-model change: for every program pair
(scalar program, array kernel) the phase ledger — name, rounds, messages,
ticks — and all program outputs must be bit-for-bit identical.  These
tests pin that contract at the algorithm level over seeded graphs, both
PA modes, several aggregations and all three fuzzed workloads; the
schedule fuzzer's engine axis (``tests/fuzz/test_schedule_fuzz.py``)
extends the same check to fresh random cases on every run.
"""

from __future__ import annotations

import pytest

from repro.algorithms import cc_labeling, minimum_spanning_tree
from repro.analysis import kruskal_mst
from repro.core import (
    DETERMINISTIC,
    MAX,
    MIN,
    RANDOMIZED,
    SUM,
    solve_pa,
)
from repro.graphs import (
    bfs_ball_partition,
    grid_2d,
    preferential_attachment,
    random_connected,
    random_connected_partition,
    random_regular,
    with_distinct_weights,
)


def _phase_log(ledger):
    return [(p.name, p.rounds, p.messages, p.ticks) for p in ledger.phases()]


def _graphs():
    return [
        ("grid", grid_2d(5, 7, uid_seed=3)),
        ("random", random_connected(40, 0.1, seed=11, uid_seed=11)),
        ("regular", random_regular(36, 3, seed=7, uid_seed=7)),
        ("pref-attach", preferential_attachment(34, attach=2, seed=5,
                                                uid_seed=5)),
    ]


# ----------------------------------------------------------------------
# PA: aggregates, per-node values and the full phase log
# ----------------------------------------------------------------------
@pytest.mark.parametrize("kind,net", _graphs())
@pytest.mark.parametrize("mode", [RANDOMIZED, DETERMINISTIC])
def test_pa_bit_for_bit_across_engines(kind, net, mode):
    partition = random_connected_partition(net, 5, seed=13)
    values = [(v * 11 + 2) % 251 for v in range(net.n)]
    results = {
        impl: solve_pa(
            net, partition, values, SUM, mode=mode, seed=17,
            engine_impl=impl,
        )
        for impl in ("scalar", "array")
    }
    sc, ar = results["scalar"], results["array"]
    assert dict(ar.aggregates) == dict(sc.aggregates)
    assert list(ar.value_at_node) == list(sc.value_at_node)
    assert _phase_log(ar.ledger) == _phase_log(sc.ledger)


@pytest.mark.parametrize("agg", [SUM, MIN, MAX])
def test_pa_parity_holds_for_every_identity_aggregation(agg):
    # array_wave_supported gates on the aggregation: SUM/MIN/MAX over int
    # tokens take the vectorized wave, anything else falls back per phase
    # — either way the ledger must not move.
    net = grid_2d(6, 6, uid_seed=9)
    partition = bfs_ball_partition(net, 7, seed=4)
    values = [(v * 3 + 1) % 97 for v in range(net.n)]
    sc = solve_pa(net, partition, values, agg, seed=5, engine_impl="scalar")
    ar = solve_pa(net, partition, values, agg, seed=5, engine_impl="array")
    assert dict(ar.aggregates) == dict(sc.aggregates)
    assert _phase_log(ar.ledger) == _phase_log(sc.ledger)


def test_pa_parity_with_tuple_values_falls_back_identically():
    # MIN over tuples is outside the array wave's supported domain; the
    # dispatch must degrade to the scalar wave without any ledger drift.
    net = random_connected(30, 0.12, seed=21, uid_seed=21)
    partition = random_connected_partition(net, 4, seed=8)
    values = [(net.uid[v] % 7, net.uid[v]) for v in range(net.n)]
    from repro.core import MIN_TUPLE

    sc = solve_pa(net, partition, values, MIN_TUPLE, seed=2,
                  engine_impl="scalar")
    ar = solve_pa(net, partition, values, MIN_TUPLE, seed=2,
                  engine_impl="array")
    assert dict(ar.aggregates) == dict(sc.aggregates)
    assert _phase_log(ar.ledger) == _phase_log(sc.ledger)


# ----------------------------------------------------------------------
# Whole algorithms on top of PA
# ----------------------------------------------------------------------
@pytest.mark.parametrize("mode", [RANDOMIZED, DETERMINISTIC])
def test_mst_bit_for_bit_across_engines(mode):
    net = with_distinct_weights(grid_2d(5, 6, uid_seed=2), seed=19)
    sc = minimum_spanning_tree(net, mode=mode, seed=3, engine_impl="scalar")
    ar = minimum_spanning_tree(net, mode=mode, seed=3, engine_impl="array")
    assert ar.output == sc.output == frozenset(kruskal_mst(net))
    assert _phase_log(ar.ledger) == _phase_log(sc.ledger)


def test_components_bit_for_bit_across_engines():
    net = random_connected(42, 0.09, seed=31, uid_seed=31)
    subgraph = [e for i, e in enumerate(net.edges) if i % 3 != 0]
    sc = cc_labeling(net, subgraph, seed=6, engine_impl="scalar")
    ar = cc_labeling(net, subgraph, seed=6, engine_impl="array")
    assert list(ar.output) == list(sc.output)
    assert _phase_log(ar.ledger) == _phase_log(sc.ledger)


# ----------------------------------------------------------------------
# The ledger really is phase-for-phase, not just in aggregate
# ----------------------------------------------------------------------
def test_parity_covers_every_named_phase():
    net = grid_2d(6, 5, uid_seed=1)
    partition = random_connected_partition(net, 4, seed=3)
    values = list(range(net.n))
    sc = solve_pa(net, partition, values, SUM, seed=9, engine_impl="scalar")
    ar = solve_pa(net, partition, values, SUM, seed=9, engine_impl="array")
    sc_log, ar_log = _phase_log(sc.ledger), _phase_log(ar.ledger)
    assert [p[0] for p in sc_log] == [p[0] for p in ar_log]
    # The pipeline's interesting phases all actually ran on both sides.
    names = {p[0] for p in sc_log}
    assert any("wave" in name for name in names)
    assert len(sc_log) > 3
