"""Property tests for the array engine's state layout.

Three families of invariants, per the contract in
:mod:`repro.congest.arrays`:

* **pack/unpack round-trips** — whatever goes into the flat columns
  (:class:`ColumnArena` batches, :class:`EdgePool` packets,
  :class:`KeySet` keys) comes back out exactly, in the order the scalar
  twin would have produced, under seeded random workloads;
* **dtype boundaries** — :func:`int_bits_array` agrees with the scalar
  :func:`~repro.congest.message.int_bits` at every payload width,
  including above the float64-exact range (2**53) and at the int64
  extremes;
* **masked slots** — an arena's dead region (beyond the live prefix) is
  invisible: poisoning it and reusing the arena across phases never
  leaks a poisoned value into a view.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.congest.arrays import ColumnArena, int_bits_array, tuple_bits
from repro.congest.message import TUPLE_OVERHEAD_BITS, int_bits, payload_bits
from repro.core.array_queue import (
    EdgePool,
    KeySet,
    csr_expand,
    csr_from_pairs,
    first_occurrence_mask,
    group_ranks,
    in_sorted,
)

I64 = np.iinfo(np.int64)


# ----------------------------------------------------------------------
# int_bits_array: exact at every width
# ----------------------------------------------------------------------
BOUNDARY_VALUES = [
    0, 1, -1, 2, -2, 255, 256, -(2**31), 2**31, 2**32 - 1, 2**32,
    2**52, 2**53 - 1, 2**53, 2**53 + 1, 2**60 - 1, 2**60, 2**62,
    I64.max - 1, I64.max, I64.min + 1, I64.min,
]


def test_int_bits_array_matches_scalar_at_every_boundary():
    arr = np.array(BOUNDARY_VALUES, dtype=np.int64)
    expected = [int_bits(int(v)) for v in BOUNDARY_VALUES]
    assert int_bits_array(arr).tolist() == expected


@given(st.lists(st.integers(I64.min, I64.max), min_size=1, max_size=50))
@settings(max_examples=100, deadline=None)
def test_int_bits_array_matches_scalar_on_random_int64(values):
    arr = np.array(values, dtype=np.int64)
    assert int_bits_array(arr).tolist() == [int_bits(v) for v in values]


def test_tuple_bits_matches_payload_bits_composition():
    pids = np.array([0, 5, -3, 2**40], dtype=np.int64)
    got = tuple_bits(7, int_bits_array(pids))
    expected = [TUPLE_OVERHEAD_BITS + 7 + int_bits(int(p)) for p in pids]
    assert got.tolist() == expected
    # Scalar components broadcast to a 0-d cost.
    assert int(tuple_bits(3, 4)) == TUPLE_OVERHEAD_BITS + 7
    # Cross-check against the scalar charger on a realistic shape.
    assert int(tuple_bits(payload_bits("claim"), int_bits_array(
        np.array([9], dtype=np.int64)))[0]) == payload_bits(("claim", 9))


# ----------------------------------------------------------------------
# ColumnArena: round-trips, growth, masked slots
# ----------------------------------------------------------------------
def _poison(arena: ColumnArena, value: int = -(10**17)) -> None:
    """Overwrite every dead slot of every column in place."""
    for name in arena.names:
        arena._cols[name][len(arena):] = value


@given(
    st.lists(
        st.lists(st.integers(-(2**40), 2**40), min_size=0, max_size=9),
        min_size=0, max_size=12,
    )
)
@settings(max_examples=60, deadline=None)
def test_column_arena_round_trips_batches_in_order(batches):
    arena = ColumnArena(("a", "b"), capacity=2)
    expect_a, expect_b = [], []
    for batch in batches:
        arena.append(
            a=np.array(batch, dtype=np.int64),
            b=np.array([v + 1 for v in batch], dtype=np.int64),
        )
        expect_a.extend(batch)
        expect_b.extend(v + 1 for v in batch)
    assert len(arena) == len(expect_a)
    assert arena.column("a").tolist() == expect_a
    assert arena.column("b").tolist() == expect_b
    rows = arena.rows()
    assert rows["a"].tolist() == expect_a and rows["b"].tolist() == expect_b


def test_column_arena_scalar_broadcast_and_schema_errors():
    arena = ColumnArena(("node", "pid"))
    arena.append(node=np.array([4, 7], dtype=np.int64), pid=3)
    assert arena.column("pid").tolist() == [3, 3]
    arena.append(node=5, pid=6)  # all-scalar: one row
    assert arena.column("node").tolist() == [4, 7, 5]
    with pytest.raises(ValueError):
        arena.append(node=1)  # missing a column
    with pytest.raises(ValueError):
        arena.append(node=1, pid=2, extra=3)
    with pytest.raises(ValueError):
        ColumnArena(())


def test_column_arena_masked_slots_survive_phase_reuse():
    # Phase 1 fills the arena; poisoned dead slots must stay invisible
    # through clear()/reuse — the cross-phase arena-reuse discipline.
    arena = ColumnArena(("x", "y"), capacity=4)
    arena.append(x=np.arange(3, dtype=np.int64), y=np.arange(3, dtype=np.int64))
    _poison(arena)
    assert arena.column("x").tolist() == [0, 1, 2]

    arena.clear()  # phase boundary: live count resets, storage retained
    assert len(arena) == 0 and arena.column("x").size == 0
    _poison(arena)
    arena.append(x=np.array([9], dtype=np.int64), y=np.array([8], dtype=np.int64))
    assert arena.column("x").tolist() == [9]
    assert arena.column("y").tolist() == [8]

    # Growth must copy only the live prefix, never the poison.
    _poison(arena)
    big = np.arange(50, dtype=np.int64)
    arena.append(x=big, y=big)
    assert arena.capacity >= 51
    assert arena.column("x").tolist() == [9] + big.tolist()

    # take() copies out the live rows and resets for the next phase.
    taken = arena.take()
    assert taken["y"].tolist() == [8] + big.tolist()
    assert len(arena) == 0


# ----------------------------------------------------------------------
# KeySet: model-based equivalence with a Python set
# ----------------------------------------------------------------------
@given(
    st.lists(
        st.lists(st.integers(-100, 100), min_size=0, max_size=12),
        min_size=0, max_size=10,
    )
)
@settings(max_examples=100, deadline=None)
def test_keyset_matches_python_set_model(batches):
    ks = KeySet()
    model = set()
    probe = np.arange(-110, 111, dtype=np.int64)
    for batch in batches:
        # Unsorted, duplicate-laden input: add() must dedup and merge.
        ks.add(np.array(batch, dtype=np.int64))
        model.update(batch)
        assert len(ks) == len(model)
        got = probe[ks.contains(probe)].tolist()
        assert got == sorted(model)


def test_in_sorted_edges():
    table = np.array([2, 5, 9], dtype=np.int64)
    vals = np.array([1, 2, 3, 9, 10], dtype=np.int64)
    assert in_sorted(table, vals).tolist() == [False, True, False, True, False]
    assert in_sorted(np.empty(0, dtype=np.int64), vals).tolist() == [False] * 5


def test_group_ranks_and_first_occurrence():
    keys = np.array([3, 3, 3, 7, 7, 9], dtype=np.int64)
    assert group_ranks(keys).tolist() == [0, 1, 2, 0, 1, 0]
    mixed = np.array([4, 1, 4, 2, 1], dtype=np.int64)
    assert first_occurrence_mask(mixed).tolist() == [
        True, True, False, True, False,
    ]


def test_csr_round_trip_groups_and_expands_in_scalar_order():
    keys = np.array([5, 2, 5, 2, 8], dtype=np.int64)
    vals = np.array([30, 11, 10, 12, 40], dtype=np.int64)
    ukeys, starts, counts, flat = csr_from_pairs(keys, vals)
    assert ukeys.tolist() == [2, 5, 8]
    groups = {
        int(k): flat[s:s + c].tolist()
        for k, s, c in zip(ukeys, starts, counts)
    }
    # Values ascending within a group: the scalar sorted-children order.
    assert groups == {2: [11, 12], 5: [10, 30], 8: [40]}
    origin, members, within = csr_expand(
        starts, counts, flat, np.array([2, 0], dtype=np.int64)
    )
    assert origin.tolist() == [0, 1, 1]
    assert members.tolist() == [40, 11, 12]
    assert within.tolist() == [0, 0, 1]


# ----------------------------------------------------------------------
# EdgePool: differential against a scalar reference of Lemma 4.2's rule
# ----------------------------------------------------------------------
class _ScalarPool:
    """Reference flush: per tick, per source, edges drain in ascending
    birth order; within an edge, packets in (p0, p1, seq) order."""

    def __init__(self, n: int, capacity: int) -> None:
        self.n = n
        self.capacity = capacity
        self.packets = []  # (src, dst, p0, p1, seq, payload)
        self.birth = {}  # (src, dst) -> seq that created the backlog entry
        self.seq = 0

    def push(self, src, dst, p0, p1, payload):
        edge = (src, dst)
        if edge not in self.birth:
            self.birth[edge] = self.seq
        self.packets.append((src, dst, p0, p1, self.seq, payload))
        self.seq += 1

    def select(self):
        by_edge = {}
        for pkt in self.packets:
            by_edge.setdefault((pkt[0], pkt[1]), []).append(pkt)
        sent, kept = [], []
        for edge, pkts in by_edge.items():
            pkts.sort(key=lambda p: (p[2], p[3], p[4]))
            sent.extend((self.birth[edge], p) for p in pkts[: self.capacity])
            kept.extend(pkts[self.capacity:])
        sent.sort(key=lambda bp: (bp[1][0], bp[0], bp[1][2], bp[1][3], bp[1][4]))
        self.packets = kept
        live = {(p[0], p[1]) for p in kept}
        self.birth = {e: b for e, b in self.birth.items() if e in live}
        return [p for _, p in sent], sorted({p[0] for p in kept})


@given(st.integers(0, 2**32 - 1), st.integers(1, 3))
@settings(max_examples=60, deadline=None)
def test_edge_pool_matches_scalar_flush_reference(seed, capacity):
    rng = np.random.default_rng(seed)
    n = 6
    pool = EdgePool(n, ("tok",), capacity=capacity)
    ref = _ScalarPool(n, capacity)
    for _ in range(4):  # ticks
        for _ in range(int(rng.integers(0, 4))):  # staged batches per tick
            count = int(rng.integers(1, 5))
            src = rng.integers(0, n, size=count)
            dst = (src + 1 + rng.integers(0, n - 1, size=count)) % n
            p0 = rng.integers(0, 3, size=count)
            p1 = rng.integers(0, 2, size=count)
            tok = rng.integers(0, 100, size=count)
            pool.push(src, dst, p0, p1, tok=tok)
            for s, d, a, b, t in zip(src, dst, p0, p1, tok):
                ref.push(int(s), int(d), int(a), int(b), int(t))
        assert pool.pending_sources().tolist() == sorted(
            {p[0] for p in ref.packets}
        )
        emitted, wake = pool.select()
        sent, ref_wake = ref.select()
        if emitted is None:
            assert not sent
            continue
        got = list(zip(
            emitted["src"].tolist(), emitted["dst"].tolist(),
            emitted["p0"].tolist(), emitted["p1"].tolist(),
            emitted["tok"].tolist(),
        ))
        want = [(p[0], p[1], p[2], p[3], p[5]) for p in sent]
        assert got == want
        assert wake.tolist() == ref_wake


def test_edge_pool_len_and_empty_select():
    pool = EdgePool(4, ("tok",))
    assert len(pool) == 0
    emitted, wake = pool.select()
    assert emitted is None and wake.size == 0
    pool.push(0, 1, 0, 0, tok=np.array([1, 2], dtype=np.int64))
    assert len(pool) == 2
    emitted, wake = pool.select()  # capacity 1: one sent, one kept
    assert emitted["tok"].tolist() == [1]
    assert len(pool) == 1 and wake.tolist() == [0]
    emitted, wake = pool.select()
    assert emitted["tok"].tolist() == [2] and wake.size == 0
