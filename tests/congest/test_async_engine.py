"""The asynchronous engine: parity, out-of-orderness, overhead accounting."""

import pytest

from repro.congest import (
    AsyncEngine,
    BandwidthExceededError,
    ChannelCapacityError,
    Engine,
    FIFORandomSchedule,
    NotAnEdgeError,
    RandomDelaySchedule,
    RoundLimitExceededError,
    SlowEdgeSchedule,
    SynchronousSchedule,
    make_schedule,
)
from repro.congest.engine import FunctionProgram
from repro.congest.schedule import ACK, PAYLOAD, SAFE
from repro.core.aggregation import SUM
from repro.core.pa import PASolver, solve_pa
from repro.graphs import grid_2d, path_graph, random_connected, star_graph
from repro.graphs.partitions import random_connected_partition
from repro.runtime import PASession, ensure_session

ALL_SCHEDULES = [
    SynchronousSchedule(),
    RandomDelaySchedule(seed=3, max_delay=4),
    SlowEdgeSchedule(seed=7, slow_fraction=0.3, slow_delay=6),
    FIFORandomSchedule(seed=11, max_delay=5),
]


def _flood(net, engine):
    """Run a token flood from node 0; return (stats, covered set)."""
    seen = set()

    def start(ctx):
        seen.add(0)
        for nb in net.neighbors[0]:
            ctx.send(0, nb, ("tok",))

    def step(ctx, node, inbox):
        if node in seen:
            return
        seen.add(node)
        for nb in net.neighbors[node]:
            ctx.send(node, nb, ("tok",))

    stats = engine.run(FunctionProgram("flood", start, step), max_ticks=200)
    return stats, seen


def _phase_log(ledger):
    return [(p.name, p.rounds, p.messages, p.ticks) for p in ledger.phases()]


# ---------------------------------------------------------------------------
# Parity with the synchronous engine
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("schedule", ALL_SCHEDULES, ids=lambda s: s.name)
def test_flood_parity_under_every_schedule(schedule):
    net = grid_2d(4, 5)
    sync_stats, sync_seen = _flood(net, Engine(net))
    async_stats, async_seen = _flood(net, AsyncEngine(net, schedule))
    assert async_seen == sync_seen
    assert (async_stats.rounds, async_stats.messages, async_stats.ticks) == (
        sync_stats.rounds, sync_stats.messages, sync_stats.ticks
    )


@pytest.mark.parametrize("mode", ["randomized", "deterministic"])
def test_pa_delay0_ledger_bit_for_bit(mode):
    net = grid_2d(5, 6)
    part = random_connected_partition(net, 5, seed=4)
    values = [v * 3 % 17 for v in range(net.n)]
    base = solve_pa(net, part, values, SUM, mode=mode, seed=2)
    res = solve_pa(
        net, part, values, SUM, mode=mode, seed=2,
        schedule=SynchronousSchedule(),
    )
    assert res.aggregates == base.aggregates
    assert res.value_at_node == base.value_at_node
    assert _phase_log(res.ledger) == _phase_log(base.ledger)


@pytest.mark.parametrize("schedule", ALL_SCHEDULES[1:], ids=lambda s: s.name)
def test_pa_outputs_identical_under_delayed_schedules(schedule):
    net = random_connected(30, 0.08, seed=5)
    part = random_connected_partition(net, 4, seed=6)
    values = list(range(net.n))
    base = solve_pa(net, part, values, SUM, seed=1)
    res = solve_pa(net, part, values, SUM, seed=1, schedule=schedule)
    assert res.aggregates == base.aggregates
    assert res.value_at_node == base.value_at_node


def test_async_mode_flag_selects_delay0_schedule():
    net = path_graph(8)
    solver = PASolver(net, async_mode=True)
    assert isinstance(solver.engine, AsyncEngine)
    assert isinstance(solver.schedule, SynchronousSchedule)


def test_profile_parity_at_delay0():
    net = grid_2d(3, 4)
    s_stats, _ = _flood(net, Engine(net, profile=True))
    a_stats, _ = _flood(net, AsyncEngine(net, SynchronousSchedule(), profile=True))
    assert a_stats.profile == s_stats.profile


def test_empty_program_runs_zero_rounds():
    net = path_graph(4)

    def start(ctx):
        pass

    def step(ctx, node, inbox):  # pragma: no cover - never activated
        raise AssertionError

    stats = AsyncEngine(net, SynchronousSchedule()).run(
        FunctionProgram("noop", start, step), max_ticks=5
    )
    assert (stats.rounds, stats.messages, stats.ticks) == (0, 0, 0)


def test_timer_wakeup_fires_at_exact_pulse():
    net = path_graph(3)
    fired = {}

    def start(ctx):
        ctx.wake_at(2, 7)

    def step(ctx, node, inbox):
        fired[node] = ctx.tick

    for engine in (Engine(net), AsyncEngine(net, RandomDelaySchedule(1, 3))):
        fired.clear()
        stats = engine.run(FunctionProgram("timer", start, step), max_ticks=10)
        assert fired == {2: 7}
        assert stats.ticks == 7


# ---------------------------------------------------------------------------
# Genuine asynchrony: out-of-order delivery and bounded skew
# ---------------------------------------------------------------------------

def test_delayed_schedules_produce_pulse_skew():
    net = grid_2d(4, 5)
    engine = AsyncEngine(net, SlowEdgeSchedule(seed=7, slow_fraction=0.3, slow_delay=6))
    _flood(net, engine)
    overhead = engine.overhead_log[-1]
    assert overhead.max_skew > 0  # nodes really ran pulses apart
    sync_engine = AsyncEngine(net, SynchronousSchedule())
    _flood(net, sync_engine)
    assert sync_engine.overhead_log[-1].max_skew == 0  # lockstep at delay 0


def test_inbox_resequenced_to_sync_order():
    # Node 0 sends two same-pulse messages to each neighbor of a star; a
    # non-FIFO schedule may reorder arrivals, but programs must see the
    # synchronous engine's canonical (sender, emission) inbox order.
    net = star_graph(6)
    inboxes = {}

    def start(ctx):
        ctx.wake(0)

    def step(ctx, node, inbox):
        if node == 0 and not inboxes.get("sent"):
            inboxes["sent"] = True
            for nb in net.neighbors[0]:
                ctx.send(0, nb, ("a", nb))
                ctx.send(0, nb, ("b", nb))
        elif inbox:
            inboxes[node] = tuple(payload for _s, payload in inbox)

    sync_engine = Engine(net)
    sync_engine.run(FunctionProgram("order", start, step), max_ticks=10,
                    capacity=2)
    expected = dict(inboxes)
    for schedule in ALL_SCHEDULES:
        inboxes.clear()
        AsyncEngine(net, schedule).run(
            FunctionProgram("order", start, step), max_ticks=10, capacity=2
        )
        assert dict(inboxes) == expected


# ---------------------------------------------------------------------------
# Overhead accounting (the synchronizer's separate ledger)
# ---------------------------------------------------------------------------

def test_overhead_ledger_is_separate_and_consistent():
    net = grid_2d(4, 4)
    engine = AsyncEngine(net, SynchronousSchedule())
    stats, _ = _flood(net, engine)
    assert len(engine.overhead_log) == 1
    overhead = engine.overhead_log[0]
    # One ack per payload; safes flow every pulse over every edge.
    assert overhead.payload_messages == stats.messages
    assert overhead.ack_messages == stats.messages
    assert overhead.safe_messages > 0
    assert overhead.pulses == stats.ticks
    # A pulse frame spans at least payload + ack + safe hops.
    assert overhead.time_units >= 3 * overhead.pulses
    # The overhead ledger mirrors the log: rounds=time-units,
    # messages=control traffic — and never contaminates the main stats.
    entry = engine.overhead.phases()[0]
    assert entry.rounds == overhead.time_units
    assert entry.messages == overhead.control_messages
    assert stats.messages < entry.messages


def test_session_exposes_async_overhead():
    net = grid_2d(3, 4)
    session = PASession(net, schedule=RandomDelaySchedule(2, 3))
    assert session.async_overhead is session.solver.engine.overhead
    assert session.async_overhead.messages > 0  # tree build already ran
    assert PASession(net).async_overhead is None


def test_slow_edges_stretch_the_virtual_clock():
    net = grid_2d(4, 5)
    fast = AsyncEngine(net, SynchronousSchedule())
    slow = AsyncEngine(net, SlowEdgeSchedule(seed=7, slow_fraction=0.4, slow_delay=9))
    f_stats, _ = _flood(net, fast)
    s_stats, _ = _flood(net, slow)
    # Same cost model, slower virtual clock.
    assert (f_stats.rounds, f_stats.messages) == (s_stats.rounds, s_stats.messages)
    assert slow.overhead_log[-1].time_units > fast.overhead_log[-1].time_units


# ---------------------------------------------------------------------------
# Model audits still enforced
# ---------------------------------------------------------------------------

def test_capacity_enforced_at_delivery():
    net = path_graph(2)

    def start(ctx):
        ctx.send(0, 1, ("x", 1))
        ctx.send(0, 1, ("x", 2))

    def step(ctx, node, inbox):
        pass

    with pytest.raises(ChannelCapacityError):
        AsyncEngine(net, SynchronousSchedule()).run(
            FunctionProgram("cap", start, step), max_ticks=5
        )
    # capacity=2 legalizes the same program.
    stats = AsyncEngine(net, SynchronousSchedule()).run(
        FunctionProgram("cap", start, step), max_ticks=5, capacity=2
    )
    assert stats.messages == 2


def test_edge_and_bit_audits_match_sync_engine():
    net = path_graph(3)

    def bad_edge(ctx):
        ctx.send(0, 2, ("x",))

    def fat_payload(ctx):
        ctx.send(0, 1, tuple(range(300)))

    def step(ctx, node, inbox):
        pass

    with pytest.raises(NotAnEdgeError):
        AsyncEngine(net, SynchronousSchedule()).run(
            FunctionProgram("edge", bad_edge, step), max_ticks=5
        )
    with pytest.raises(BandwidthExceededError):
        AsyncEngine(net, SynchronousSchedule()).run(
            FunctionProgram("bits", fat_payload, step), max_ticks=5
        )
    with pytest.raises(ValueError):
        AsyncEngine(net, strict_edges=False, strict_bits=True)


def test_round_limit_enforced():
    net = path_graph(2)

    def start(ctx):
        ctx.send(0, 1, ("x",))

    def step(ctx, node, inbox):
        # ping-pong forever
        other = 1 - node
        ctx.send(node, other, ("x",))

    with pytest.raises(RoundLimitExceededError):
        AsyncEngine(net, RandomDelaySchedule(1, 2)).run(
            FunctionProgram("pp", start, step), max_ticks=6
        )


# ---------------------------------------------------------------------------
# Schedules themselves
# ---------------------------------------------------------------------------

def test_schedules_are_pure_and_deterministic():
    a = RandomDelaySchedule(seed=42, max_delay=7)
    b = RandomDelaySchedule(seed=42, max_delay=7)
    draws = [(s, d, p, k) for s in range(4) for d in range(4)
             for p in range(3) for k in (PAYLOAD, ACK, SAFE)]
    assert [a.delay(*q) for q in draws] == [b.delay(*q) for q in draws]
    assert any(a.delay(*q) != 0 for q in draws)
    assert all(0 <= a.delay(*q) <= 7 for q in draws)
    c = RandomDelaySchedule(seed=43, max_delay=7)
    assert [a.delay(*q) for q in draws] != [c.delay(*q) for q in draws]


def test_slow_edge_schedule_is_symmetric_and_seeded():
    sched = SlowEdgeSchedule(seed=5, slow_fraction=0.5, slow_delay=4)
    for u, v in [(0, 1), (3, 9), (2, 7)]:
        assert sched.is_slow(u, v) == sched.is_slow(v, u)
        d_uv = sched.delay(u, v, 0, PAYLOAD)
        assert d_uv == sched.delay(v, u, 5, ACK)
        assert d_uv in (0, 4)


def test_make_schedule_registry():
    assert isinstance(make_schedule("sync"), SynchronousSchedule)
    assert isinstance(make_schedule("random", seed=1), RandomDelaySchedule)
    assert isinstance(make_schedule("slow-edge", seed=1), SlowEdgeSchedule)
    assert isinstance(make_schedule("fifo", seed=1), FIFORandomSchedule)
    assert make_schedule("fifo", seed=1).fifo
    assert not make_schedule("random", seed=1).fifo
    with pytest.raises(ValueError):
        make_schedule("bogus")
    with pytest.raises(ValueError):
        RandomDelaySchedule(max_delay=-1)
    with pytest.raises(ValueError):
        SlowEdgeSchedule(slow_fraction=1.5)


# ---------------------------------------------------------------------------
# Plumbing guards
# ---------------------------------------------------------------------------

def test_solver_and_schedule_are_mutually_exclusive():
    net = path_graph(6)
    solver = PASolver(net)
    part = random_connected_partition(net, 2, seed=0)
    with pytest.raises(ValueError):
        solve_pa(net, part, [1] * net.n, SUM, solver=solver,
                 schedule=SynchronousSchedule())
    with pytest.raises(ValueError):
        PASession(net, solver=solver, async_mode=True)
    session = PASession(net, schedule=SynchronousSchedule())
    with pytest.raises(ValueError):
        ensure_session(session, net, schedule=SynchronousSchedule())


def test_single_node_network():
    from repro.congest.network import Network

    net = Network([], n=1)
    woke = []

    def start(ctx):
        ctx.wake(0)

    def step(ctx, node, inbox):
        woke.append(ctx.tick)

    stats = AsyncEngine(net, RandomDelaySchedule(1, 4)).run(
        FunctionProgram("solo", start, step), max_ticks=5
    )
    assert woke == [1]
    assert stats.ticks == 1
