"""Cost ledger accounting."""

from repro.congest import CostLedger, PhaseStats, merge_max_rounds


def test_charge_accumulates():
    ledger = CostLedger()
    ledger.charge(PhaseStats("a", rounds=3, messages=10))
    ledger.charge(PhaseStats("b", rounds=2, messages=5))
    assert ledger.rounds == 5
    assert ledger.messages == 15
    assert len(ledger.phases()) == 2


def test_charge_local():
    ledger = CostLedger()
    ledger.charge_local("exchange", rounds=1, messages=42)
    assert ledger.rounds == 1
    assert ledger.messages == 42


def test_merge_with_prefix():
    inner = CostLedger()
    inner.charge(PhaseStats("wave", rounds=7, messages=70))
    outer = CostLedger()
    outer.merge(inner, prefix="setup:")
    assert outer.rounds == 7
    assert outer.phases()[0].name == "setup:wave"


def test_by_name_aggregates_repeated_phases():
    ledger = CostLedger()
    ledger.charge(PhaseStats("wave", rounds=3, messages=10))
    ledger.charge(PhaseStats("wave", rounds=4, messages=20))
    grouped = ledger.by_name()
    assert grouped["wave"].rounds == 7
    assert grouped["wave"].messages == 30


def test_summary_mentions_totals():
    ledger = CostLedger()
    ledger.charge(PhaseStats("x", rounds=1, messages=2))
    text = ledger.summary()
    assert "rounds=1" in text
    assert "x" in text


def test_merge_max_rounds_parallel_composition():
    a = CostLedger()
    a.charge(PhaseStats("p", rounds=5, messages=10))
    b = CostLedger()
    b.charge(PhaseStats("p", rounds=3, messages=20))
    stats = merge_max_rounds([a, b], "parallel")
    assert stats.rounds == 5
    assert stats.messages == 30


def test_merge_max_rounds_empty_list():
    stats = merge_max_rounds([], "nothing")
    assert (stats.rounds, stats.messages) == (0, 0)
    assert stats.name == "nothing"


def test_merge_max_rounds_unequal_ledgers():
    a = CostLedger()
    a.charge(PhaseStats("p", rounds=5, messages=10))
    a.charge(PhaseStats("q", rounds=2, messages=4))
    b = CostLedger()  # never charged
    c = CostLedger()
    c.charge(PhaseStats("p", rounds=9, messages=1))
    stats = merge_max_rounds([a, b, c], "parallel")
    assert stats.rounds == 9  # max over ledger totals, empty counts as 0
    assert stats.messages == 15


def test_merge_prefix_collision_keeps_both_phase_logs():
    # ``setup:wave`` charged directly and ``wave`` merged under the same
    # prefix must stay distinct log entries but aggregate under one name.
    outer = CostLedger()
    outer.charge(PhaseStats("setup:wave", rounds=1, messages=2))
    inner = CostLedger()
    inner.charge(PhaseStats("wave", rounds=7, messages=70))
    outer.merge(inner, prefix="setup:")
    assert [p.name for p in outer.phases()] == ["setup:wave", "setup:wave"]
    assert outer.rounds == 8
    assert outer.messages == 72
    assert outer.by_name()["setup:wave"].rounds == 8


def test_merge_twice_double_counts_by_design():
    # merge() is additive re-attribution; callers own idempotence.
    inner = CostLedger()
    inner.charge(PhaseStats("wave", rounds=3, messages=5))
    outer = CostLedger()
    outer.merge(inner)
    outer.merge(inner)
    assert outer.rounds == 6
    assert len(outer.phases()) == 2


def test_merge_carries_ticks_bits_and_profile():
    from repro.congest import EngineProfile

    inner = CostLedger()
    prof = EngineProfile(ticks=4, peak_in_flight=9, activations=12, idle_ticks=1)
    inner.charge(
        PhaseStats("wave", rounds=3, messages=5, ticks=4, bits=40, profile=prof)
    )
    outer = CostLedger()
    outer.merge(inner, prefix="sub:")
    (copied,) = outer.phases()
    assert (copied.ticks, copied.bits) == (4, 40)
    assert copied.profile == prof


def test_record_skips_trace_emission_but_counts():
    from repro.obs import Tracer, use_tracer

    ledger = CostLedger()
    tracer = Tracer()
    with use_tracer(tracer):
        ledger.record(PhaseStats("silent", rounds=1, messages=2))
        ledger.charge(PhaseStats("loud", rounds=3, messages=4))
    assert (ledger.rounds, ledger.messages) == (4, 6)
    assert [e["name"] for e in tracer.ledger_events()] == ["loud"]


def test_summary_aligns_columns_and_shows_bits():
    ledger = CostLedger()
    ledger.charge(PhaseStats("short", rounds=1, messages=2, bits=16))
    ledger.charge(PhaseStats("a-much-longer-phase", rounds=123, messages=45678, bits=9))
    lines = ledger.summary().splitlines()
    assert lines[0] == "total: rounds=124 messages=45680 bits=25"
    body = lines[1:]
    # one line per phase, sorted, all columns starting at the same offset
    assert [ln.split()[0] for ln in body] == ["a-much-longer-phase", "short"]
    assert len({ln.index("rounds=") for ln in body}) == 1
    assert len({ln.index("messages=") for ln in body}) == 1
    assert len({ln.index("bits=") for ln in body}) == 1


def test_summary_omits_bits_column_when_untracked():
    ledger = CostLedger()
    ledger.charge(PhaseStats("x", rounds=1, messages=2))
    assert "bits" not in ledger.summary()


def test_summary_empty_ledger():
    assert CostLedger().summary() == "total: rounds=0 messages=0"


def test_repr_is_stable_and_informative():
    ledger = CostLedger()
    assert repr(ledger) == "CostLedger(stream='main', phases=0, rounds=0, messages=0)"
    ledger.charge(PhaseStats("x", rounds=1, messages=2))
    assert repr(ledger) == "CostLedger(stream='main', phases=1, rounds=1, messages=2)"
    assert (
        repr(CostLedger(stream="recovery"))
        == "CostLedger(stream='recovery', phases=0, rounds=0, messages=0)"
    )
