"""Cost ledger accounting."""

from repro.congest import CostLedger, PhaseStats, merge_max_rounds


def test_charge_accumulates():
    ledger = CostLedger()
    ledger.charge(PhaseStats("a", rounds=3, messages=10))
    ledger.charge(PhaseStats("b", rounds=2, messages=5))
    assert ledger.rounds == 5
    assert ledger.messages == 15
    assert len(ledger.phases()) == 2


def test_charge_local():
    ledger = CostLedger()
    ledger.charge_local("exchange", rounds=1, messages=42)
    assert ledger.rounds == 1
    assert ledger.messages == 42


def test_merge_with_prefix():
    inner = CostLedger()
    inner.charge(PhaseStats("wave", rounds=7, messages=70))
    outer = CostLedger()
    outer.merge(inner, prefix="setup:")
    assert outer.rounds == 7
    assert outer.phases()[0].name == "setup:wave"


def test_by_name_aggregates_repeated_phases():
    ledger = CostLedger()
    ledger.charge(PhaseStats("wave", rounds=3, messages=10))
    ledger.charge(PhaseStats("wave", rounds=4, messages=20))
    grouped = ledger.by_name()
    assert grouped["wave"].rounds == 7
    assert grouped["wave"].messages == 30


def test_summary_mentions_totals():
    ledger = CostLedger()
    ledger.charge(PhaseStats("x", rounds=1, messages=2))
    text = ledger.summary()
    assert "rounds=1" in text
    assert "x" in text


def test_merge_max_rounds_parallel_composition():
    a = CostLedger()
    a.charge(PhaseStats("p", rounds=5, messages=10))
    b = CostLedger()
    b.charge(PhaseStats("p", rounds=3, messages=20))
    stats = merge_max_rounds([a, b], "parallel")
    assert stats.rounds == 5
    assert stats.messages == 30
