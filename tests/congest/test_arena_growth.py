"""ColumnArena growth: one batch may exceed capacity many times over."""

from __future__ import annotations

import numpy as np

from repro.congest.arrays import ColumnArena


def test_single_batch_far_beyond_capacity():
    """Regression: growth must start from the *needed* size, not double
    blindly — a batch 100x the capacity lands in one allocation."""
    arena = ColumnArena(("a", "b"), capacity=4)
    big = np.arange(400, dtype=np.int64)
    arena.append(a=big, b=big * 2)
    assert len(arena) == 400
    assert arena.capacity >= 400
    assert np.array_equal(arena.column("a"), big)
    assert np.array_equal(arena.column("b"), big * 2)


def test_growth_preserves_earlier_rows():
    arena = ColumnArena(("x",), capacity=2)
    arena.append(x=np.array([1, 2], dtype=np.int64))
    arena.append(x=np.arange(100, dtype=np.int64))
    got = arena.column("x")
    assert got[:2].tolist() == [1, 2]
    assert got[2:].tolist() == list(range(100))


def test_small_appends_still_grow_geometrically():
    arena = ColumnArena(("x",), capacity=4)
    for k in range(5):
        arena.append(x=np.array([k], dtype=np.int64))
    # 5 rows over capacity 4: geometric doubling, not minimal growth.
    assert arena.capacity == 8
    assert arena.column("x").tolist() == [0, 1, 2, 3, 4]
