"""Timer-wheel fast-forward and schedule input validation."""

import itertools

import pytest

from repro.congest import (
    AsyncEngine,
    RandomDelaySchedule,
    Schedule,
    ScheduleValidationError,
    SlowEdgeSchedule,
    SynchronousSchedule,
    validate_schedule,
)
from repro.congest.engine import FunctionProgram
from repro.graphs import grid_2d, path_graph

#: Schedules whose delay is one constant for every message — the only
#: ones the fast-forward jump is allowed to fire under.
UNIFORM_SCHEDULES = [
    SynchronousSchedule(),
    RandomDelaySchedule(seed=1, max_delay=0),
    SlowEdgeSchedule(seed=2, slow_fraction=1.0, slow_delay=4),
]


def _sparse_timer_program(net, record):
    """A burst of flooding, then a long idle gap until a lone timer."""

    def start(ctx):
        for nb in net.neighbors[0]:
            ctx.send(0, nb, ("tok",))
        ctx.wake_at(1, 25)
        ctx.wake_at(0, 40)

    def step(ctx, node, inbox):
        record.append((node, ctx.tick, len(inbox)))

    return FunctionProgram("sparse", start, step)


def _overhead_records(engine):
    return [
        (r.name, r.pulses, r.time_units, r.payload_messages,
         r.ack_messages, r.safe_messages, r.max_skew)
        for r in engine.overhead_log
    ]


# ---------------------------------------------------------------------------
# Fast-forward: exact-cost jumps over idle pulse gaps
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("schedule", UNIFORM_SCHEDULES, ids=lambda s: s.name)
def test_jump_matches_walk_bit_for_bit(schedule):
    net = grid_2d(3, 4)
    walked, jumped = [], []
    slow = AsyncEngine(net, schedule, fast_forward=False)
    slow_stats = slow.run(_sparse_timer_program(net, walked), max_ticks=60)
    fast = AsyncEngine(net, schedule)
    fast_stats = fast.run(_sparse_timer_program(net, jumped), max_ticks=60)
    assert jumped == walked
    assert fast_stats == slow_stats
    # The synchronizer tax is identical too: the jump charges exactly
    # what the walked idle pulses would have cost.
    assert _overhead_records(fast) == _overhead_records(slow)
    assert fast.overhead.phases() == slow.overhead.phases()
    assert slow.fast_forward_jumps == 0


@pytest.mark.parametrize("schedule", UNIFORM_SCHEDULES, ids=lambda s: s.name)
def test_lockstep_idle_gaps_are_jumped(schedule):
    # With no payload traffic every node stays in lockstep, so the jump
    # preconditions hold in each idle gap.  (A flood at delay > 0 can
    # leave cohorts time-shifted, in which case the engine keeps
    # walking — parity above covers that path.)
    net = grid_2d(3, 4)
    fired = []

    def start(ctx):
        ctx.wake_at(1, 25)
        ctx.wake_at(0, 40)

    def step(ctx, node, inbox):
        fired.append((node, ctx.tick))

    fast = AsyncEngine(net, schedule)
    slow = AsyncEngine(net, schedule, fast_forward=False)
    fast_stats = fast.run(FunctionProgram("timers", start, step), max_ticks=60)
    fired_fast, fired[:] = list(fired), []
    slow_stats = slow.run(FunctionProgram("timers", start, step), max_ticks=60)
    assert fired_fast == fired == [(1, 25), (0, 40)]
    assert fast_stats == slow_stats
    assert _overhead_records(fast) == _overhead_records(slow)
    assert fast.fast_forward_jumps >= 2  # one per idle gap


def test_varying_delay_schedules_never_jump():
    net = grid_2d(3, 4)
    record = []
    engine = AsyncEngine(net, RandomDelaySchedule(seed=3, max_delay=2))
    engine.run(_sparse_timer_program(net, record), max_ticks=60)
    assert engine.fast_forward_jumps == 0
    assert (1, 25, 0) in record and (0, 40, 0) in record


def test_uniform_delay_contract():
    assert SynchronousSchedule().uniform_delay() == 0
    assert RandomDelaySchedule(seed=1, max_delay=0).uniform_delay() == 0
    assert RandomDelaySchedule(seed=1, max_delay=3).uniform_delay() is None
    assert SlowEdgeSchedule(seed=1, slow_fraction=1.0, slow_delay=4).uniform_delay() == 4
    assert SlowEdgeSchedule(seed=1, slow_fraction=0.0, slow_delay=4).uniform_delay() == 0
    assert SlowEdgeSchedule(seed=1, slow_fraction=0.5, slow_delay=4).uniform_delay() is None
    assert Schedule().uniform_delay() is None  # base class: no promise


def test_fast_forward_jump_is_cost_exact_in_closed_form():
    # One lone timer at pulse 10 and no messages at all: the whole phase
    # is idle pulses, each costing (3 + d) time units and 2m safe
    # messages at uniform delay d.
    net = path_graph(3)
    m2 = sum(len(net.neighbors[v]) for v in range(net.n))

    def start(ctx):
        ctx.wake_at(2, 10)

    fired = []

    def step(ctx, node, inbox):
        fired.append((node, ctx.tick))

    engine = AsyncEngine(net, SynchronousSchedule())
    engine.run(FunctionProgram("lone-timer", start, step), max_ticks=20)
    assert fired == [(2, 10)]
    assert engine.fast_forward_jumps == 1
    rec = engine.overhead_log[-1]
    assert rec.pulses == 10
    assert rec.safe_messages == 10 * m2  # one full 2m wave per pulse
    # The jumped gap charges exactly the walked idle-frame cost; the
    # activation frame and quiescence tail are charged identically, so
    # total virtual time matches the walk to the unit.
    walked = AsyncEngine(net, SynchronousSchedule(), fast_forward=False)
    walked.run(FunctionProgram("lone-timer", start, step), max_ticks=20)
    assert rec.time_units == walked.overhead_log[-1].time_units
    assert rec.time_units >= 10 * 3  # >= 3 units per idle frame at d=0


# ---------------------------------------------------------------------------
# Schedule validation: broken schedules fail loudly, up front
# ---------------------------------------------------------------------------

class _NegativeSchedule(Schedule):
    name = "negative"
    fifo = False

    def delay(self, src, dst, pulse, kind):
        return -1


class _FloatSchedule(Schedule):
    name = "float"
    fifo = False

    def delay(self, src, dst, pulse, kind):
        return 0.5


class _StatefulSchedule(Schedule):
    """Illegally draws from a stream: same coordinate, changing answer."""

    name = "stateful"
    fifo = False

    def __init__(self):
        self._counter = itertools.count()

    def delay(self, src, dst, pulse, kind):
        return next(self._counter) % 2


class _LateNegativeSchedule(Schedule):
    """Passes the construction probe, turns negative at runtime."""

    name = "late-negative"
    fifo = False

    def delay(self, src, dst, pulse, kind):
        return -3 if pulse == 3 else 0


@pytest.mark.parametrize(
    "schedule", [_NegativeSchedule(), _FloatSchedule(), _StatefulSchedule()],
    ids=lambda s: s.name,
)
def test_broken_schedules_rejected_at_engine_construction(schedule):
    net = grid_2d(3, 3)
    with pytest.raises(ScheduleValidationError):
        AsyncEngine(net, schedule)


def test_validation_error_names_the_offending_coordinate():
    net = path_graph(4)
    with pytest.raises(ScheduleValidationError) as err:
        validate_schedule(_NegativeSchedule(), net)
    assert err.value.src is not None and err.value.dst is not None
    assert "negative" in str(err.value)


def test_runtime_guard_catches_late_negative_delays():
    net = path_graph(6)
    engine = AsyncEngine(net, _LateNegativeSchedule())  # probe passes

    def start(ctx):
        for nb in net.neighbors[0]:
            ctx.send(0, nb, ("tok",))

    seen = set()

    def step(ctx, node, inbox):
        if node not in seen:
            seen.add(node)
            for nb in net.neighbors[node]:
                ctx.send(node, nb, ("tok",))

    with pytest.raises(ScheduleValidationError):
        engine.run(FunctionProgram("flood", start, step), max_ticks=50)


def test_good_schedules_validate_clean():
    net = grid_2d(3, 3)
    for schedule in UNIFORM_SCHEDULES + [RandomDelaySchedule(seed=5, max_delay=4)]:
        validate_schedule(schedule, net)  # must not raise
