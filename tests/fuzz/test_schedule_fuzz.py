"""The schedule fuzzer: differential checks pass, failures shrink & replay.

This is the tier-1 slice of the fuzzing harness: a handful of seeded
cases run on every test invocation (the CI fuzz job runs 25 more), plus
direct tests of the machinery itself — case derivation is pure, the
shrinker minimizes against an injected failure predicate, and the CLI
replays a seed pair verbatim.
"""

from __future__ import annotations

import json
from dataclasses import replace

import pytest

from repro.fuzz import case_for_index, fuzz, run_case, shrink_case
from repro.fuzz.__main__ import main as fuzz_main
from repro.fuzz.harness import DELAYED_KINDS, FuzzCase, build_network, schedules_for


def test_fuzz_slice_passes():
    report = fuzz(runs=6, base_seed=20260726, max_n=26, log=None)
    assert report.ok, [f.as_dict() for f in report.failures]


def test_case_derivation_is_pure_and_varied():
    cases = [case_for_index(7, i) for i in range(9)]
    again = [case_for_index(7, i) for i in range(9)]
    assert cases == again
    assert {c.algorithm for c in cases} == {"pa", "mst", "components"}
    assert len({(c.graph_seed, c.schedule_seed) for c in cases}) == 9
    assert all(8 <= c.n <= 36 for c in cases)


def test_networks_and_schedules_replay_from_seeds():
    case = case_for_index(3, 5)
    net_a, net_b = build_network(case), build_network(case)
    assert net_a.n == net_b.n and list(net_a.edges) == list(net_b.edges)
    assert [s.name for s in schedules_for(case)] == [
        s.name for s in schedules_for(case)
    ]
    assert len(schedules_for(case)) == len(DELAYED_KINDS)


def test_run_case_detects_an_injected_divergence(monkeypatch):
    # Break the async engine's resequencing and the differential harness
    # must notice: delivered inboxes lose their canonical order.
    from repro.congest import async_engine as ae

    case = case_for_index(1, 0)
    assert run_case(case) is None

    original = ae._AsyncPhase._build_inbox

    def scrambled(self, v, t):
        inbox = original(self, v, t)
        return tuple(reversed(inbox))

    monkeypatch.setattr(ae._AsyncPhase, "_build_inbox", scrambled)
    message = run_case(case)
    assert message is not None


def test_engine_axis_detects_an_injected_array_divergence(monkeypatch):
    # Corrupt the array engine's metering (one extra message per phase)
    # and the scalar-vs-array parity check must notice; the shrinker must
    # then pin the blame on the engine axis — both implementations kept,
    # every delayed schedule dropped.
    from repro.congest import arrays

    case = case_for_index(2, 0)
    assert run_case(case) is None

    original = arrays.run_array_phase

    def inflated(engine, program, *args, **kwargs):
        stats = original(engine, program, *args, **kwargs)
        return replace(stats, messages=stats.messages + 1)

    monkeypatch.setattr(arrays, "run_array_phase", inflated)
    message = run_case(case)
    assert message is not None and "array" in message

    shrunk, message = shrink_case(case)
    assert shrunk.engine_impls == ("scalar", "array")
    assert shrunk.schedule_kinds == ()
    assert "ledger parity" in message
    assert "--engines scalar,array" in shrunk.replay_command()


def test_shrinker_minimizes_and_isolates_schedule():
    base = FuzzCase(graph_seed=11, schedule_seed=13, n=32)

    def check(case):
        # Synthetic failure: only graphs of size >= 14 under the
        # slow-edge schedule "fail".
        if case.n >= 14 and "slow-edge" in case.schedule_kinds:
            return "synthetic failure"
        return None

    shrunk, message = shrink_case(base, check=check)
    assert message == "synthetic failure"
    assert shrunk.schedule_kinds == ("slow-edge",)
    assert 14 <= shrunk.n <= 16  # close to minimal, never below failing
    assert (shrunk.graph_seed, shrunk.schedule_seed) == (11, 13)
    assert "--replay 11:13" in shrunk.replay_command()
    with pytest.raises(ValueError):
        shrink_case(base, check=lambda case: None)


def test_cli_replay_roundtrip(tmp_path, capsys):
    case = case_for_index(5, 0, max_n=18)
    rc = fuzz_main([
        "--replay", f"{case.graph_seed}:{case.schedule_seed}",
        "--n", str(case.n), "--algorithm", case.algorithm,
        "--mode", case.mode, "--graph", case.graph_kind,
    ])
    assert rc == 0
    assert "replay passed" in capsys.readouterr().out


def test_cli_writes_failure_artifact(tmp_path, monkeypatch, capsys):
    # Force every case to fail fast so the CLI artifact path is covered.
    from repro.fuzz import harness

    failing = replace(
        case_for_index(0, 0), schedule_kinds=("random",)
    )
    monkeypatch.setattr(
        "repro.fuzz.__main__.fuzz",
        lambda **kw: harness.FuzzReport(
            runs=1,
            failures=[harness.FuzzFailure(case=failing, message="boom")],
        ),
    )
    out = tmp_path / "failures.json"
    rc = fuzz_main(["--runs", "1", "--out", str(out)])
    assert rc == 1
    payload = json.loads(out.read_text())
    assert payload[0]["message"] == "boom"
    assert payload[0]["replay"].startswith("python -m repro.fuzz --replay")
