"""The fuzzer's fault axis: derivation, recovery checks, triple shrinking."""

import pytest

from repro.fuzz import case_for_index, fault_plan_for, run_case, shrink_case
from repro.fuzz.__main__ import main as fuzz_main
from repro.fuzz.harness import FAULT_KINDS, FuzzCase, FuzzFailure


def test_case_derivation_draws_the_fault_axis():
    cases = [case_for_index(11, i) for i in range(24)]
    again = [case_for_index(11, i) for i in range(24)]
    assert cases == again  # fault_seed/fault_kinds are pure draws too
    with_faults = [c for c in cases if c.fault_kinds]
    assert with_faults  # the axis actually fires
    assert all(c.algorithm in ("pa", "mst") for c in with_faults)
    assert all(k in FAULT_KINDS for c in with_faults for k in c.fault_kinds)
    assert len({c.fault_seed for c in cases}) > 20


def test_fault_plan_for_is_pure_and_recoverable():
    case = FuzzCase(graph_seed=1, schedule_seed=2, fault_seed=77,
                    fault_kinds=("crash-loss",))
    plan_a = fault_plan_for(case, 20)
    plan_b = fault_plan_for(case, 20)
    assert plan_a == plan_b
    assert plan_a.crashes and plan_a.losses
    assert plan_a.clear_after is not None  # always recoverable
    assert fault_plan_for(FuzzCase(graph_seed=1, schedule_seed=2), 20) is None
    loss_only = fault_plan_for(
        FuzzCase(graph_seed=1, schedule_seed=2, fault_seed=5,
                 fault_kinds=("loss",)), 20,
    )
    assert not loss_only.crashes and loss_only.losses


def test_fault_case_passes_end_to_end():
    case = FuzzCase(
        graph_seed=32571731, schedule_seed=532557382, fault_seed=427484391,
        n=12, algorithm="pa", graph_kind="random",
        schedule_kinds=(), engine_impls=("scalar",), fault_kinds=("crash",),
    )
    assert run_case(case) is None


def test_shrinker_pins_a_fault_only_failure_to_the_triple():
    base = FuzzCase(graph_seed=5, schedule_seed=6, fault_seed=7, n=30,
                    fault_kinds=("crash",))

    def check(case):
        return "fault-only failure" if case.fault_kinds else None

    shrunk, message = shrink_case(base, check=check)
    assert message == "fault-only failure"
    assert shrunk.fault_kinds == ("crash",)  # the guilty axis survives
    assert shrunk.engine_impls == ("scalar",)  # innocents stripped
    assert shrunk.schedule_kinds == ()
    replay = shrunk.replay_command()
    assert "--replay 5:6:7" in replay
    assert "--faults crash" in replay


def test_shrinker_drops_an_innocent_fault_axis():
    base = FuzzCase(graph_seed=5, schedule_seed=6, fault_seed=7, n=30,
                    fault_kinds=("loss",))

    def check(case):
        # Fails with or without faults: the fault axis is innocent.
        return "always" if "slow-edge" in case.schedule_kinds else None

    shrunk, message = shrink_case(base, check=check)
    assert shrunk.fault_kinds == ()
    assert shrunk.schedule_kinds == ("slow-edge",)


def test_failure_dict_and_replay_carry_the_triple():
    case = FuzzCase(graph_seed=9, schedule_seed=8, fault_seed=123,
                    fault_kinds=("crash-loss",))
    payload = FuzzFailure(case=case, message="boom").as_dict()
    assert payload["fault_seed"] == 123
    assert payload["fault_kinds"] == ["crash-loss"]
    assert "--replay 9:8:123" in payload["replay"]


def test_cli_replays_a_fault_triple(capsys):
    rc = fuzz_main([
        "--replay", "32571731:532557382:427484391",
        "--n", "12", "--algorithm", "pa", "--graph", "random",
        "--schedules", "", "--engines", "scalar", "--faults", "crash",
    ])
    assert rc == 0
    assert "replay passed" in capsys.readouterr().out


def test_cli_rejects_unknown_fault_kind():
    with pytest.raises(SystemExit):
        fuzz_main(["--runs", "1", "--faults", "bogus"])


def test_cli_rejects_malformed_replay_triple():
    with pytest.raises(SystemExit):
        fuzz_main(["--replay", "1:2:3:4"])
